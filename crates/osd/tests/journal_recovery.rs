//! Crash-recovery torture tests at the transactional-store level.
//!
//! Where `hfad-storage`'s suite tortures raw journal frames, this one
//! asserts the end-to-end property the OSD promises: after a crash —
//! simulated by corrupting the journal tail on the shared device and
//! re-running redo recovery — the object store contains **exactly** the
//! effects of acknowledged commits, and never those of aborted or
//! half-written transactions. Every scenario runs at group-commit batch
//! sizes 0 (sync-per-commit baseline), 1 and N with identical results.

use std::sync::Arc;
use std::time::Duration;

use hfad_osd::{ObjectId, ObjectStore, OsdError, StoreConfig, TxnStore};
use hfad_storage::{
    BlockDevice, FaultConfig, FaultDevice, GroupCommitConfig, Journal, MemDevice, OpFault,
    RecordKind, StorageError,
};

const BATCH_SIZES: [usize; 3] = [0, 1, 8];

fn config_for(max_batch: usize) -> GroupCommitConfig {
    GroupCommitConfig {
        max_batch,
        max_wait: Duration::ZERO,
        ..GroupCommitConfig::default()
    }
}

struct Rig {
    device: Arc<MemDevice>,
    ts: TxnStore,
}

fn rig(max_batch: usize) -> Rig {
    let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
    let store = Arc::new(
        ObjectStore::create(
            Arc::clone(&device) as Arc<dyn BlockDevice>,
            StoreConfig {
                journal_blocks: 64,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let ts = TxnStore::with_config(store, config_for(max_batch)).unwrap();
    Rig { device, ts }
}

impl Rig {
    /// XORs one byte at `off` within the journal region.
    fn corrupt_journal_byte(&self, off: u64, mask: u8) {
        let sb = self.ts.store().superblock();
        let bs = self.device.block_size() as u64;
        let block = sb.journal_start + off / bs;
        let in_block = (off % bs) as usize;
        let mut buf = vec![0u8; bs as usize];
        self.device.read_block(block, &mut buf).unwrap();
        buf[in_block] ^= mask;
        self.device.write_block(block, &buf).unwrap();
    }

    /// Simulates the post-crash redo path: wipe the objects' contents,
    /// then replay the journal into the store.
    fn crash_and_replay(&self, oids: &[ObjectId]) -> u64 {
        for oid in oids {
            self.ts.store().truncate(*oid, 0).unwrap();
        }
        self.ts.replay().unwrap()
    }
}

/// Commits `marker` writes to `oid`: one committed txn per marker.
fn commit_markers(ts: &TxnStore, oid: ObjectId, markers: &[&str]) {
    let mut offset = 0u64;
    for m in markers {
        let mut txn = ts.begin();
        txn.write(oid, offset, m.as_bytes()).unwrap();
        txn.commit().unwrap();
        offset += m.len() as u64;
    }
}

#[test]
fn replay_restores_exactly_the_committed_state_at_every_batch_size() {
    let mut recovered = Vec::new();
    for &batch in &BATCH_SIZES {
        let r = rig(batch);
        let oid = r.ts.store().create_default(0).unwrap();
        commit_markers(&r.ts, oid, &["alpha-", "beta-", "gamma"]);
        // An aborted transaction must leave nothing behind.
        let mut txn = r.ts.begin();
        txn.write(oid, 0, b"ABORTED").unwrap();
        txn.abort().unwrap();
        let applied = r.crash_and_replay(&[oid]);
        assert_eq!(applied, 3, "batch {batch}: three committed ops replay");
        let data = r.ts.store().read(oid, 0, 64).unwrap();
        assert_eq!(data, b"alpha-beta-gamma".to_vec(), "batch {batch}");
        recovered.push(data);
    }
    assert!(
        recovered.windows(2).all(|w| w[0] == w[1]),
        "batch sizes {BATCH_SIZES:?} must recover byte-identical object state"
    );
}

#[test]
fn corrupted_tail_drops_only_the_last_txn_at_every_batch_size() {
    for &batch in &BATCH_SIZES {
        let r = rig(batch);
        let oid = r.ts.store().create_default(0).unwrap();
        commit_markers(&r.ts, oid, &["keep-one-", "keep-two-"]);
        // The victim commits and is acknowledged, then its journal bytes
        // are destroyed — the shape of a medium error under the head.
        let before = r.ts.journal().head_offset();
        let mut txn = r.ts.begin();
        txn.write(oid, 18, b"victim").unwrap();
        txn.commit().unwrap();
        let after = r.ts.journal().head_offset();
        for off in ((before + 25)..(after - 9)).step_by(7) {
            r.corrupt_journal_byte(off, 0x5A);
        }
        let applied = r.crash_and_replay(&[oid]);
        assert_eq!(applied, 2, "batch {batch}: only the intact prefix replays");
        let data = r.ts.store().read(oid, 0, 64).unwrap();
        assert_eq!(data, b"keep-one-keep-two-".to_vec(), "batch {batch}");
    }
}

#[test]
fn half_written_txn_is_never_applied_at_every_batch_size() {
    for &batch in &BATCH_SIZES {
        let r = rig(batch);
        let oid = r.ts.store().create_default(0).unwrap();
        commit_markers(&r.ts, oid, &["committed"]);
        // A transaction that crashed before its Commit frame: Begin and
        // Data reach the journal directly, Commit never does.
        let journal = r.ts.journal();
        journal
            .append(999, hfad_storage::RecordKind::Begin, b"")
            .unwrap();
        // A well-formed redo record that must never be applied.
        let phantom = hfad_osd::TxnOp::Write {
            oid,
            offset: 0,
            data: b"PHANTOM__".to_vec(),
        }
        .encode();
        journal
            .append(999, hfad_storage::RecordKind::Data, &phantom)
            .unwrap();
        let applied = r.crash_and_replay(&[oid]);
        assert_eq!(applied, 1, "batch {batch}");
        let data = r.ts.store().read(oid, 0, 16).unwrap();
        assert_eq!(data, b"committed".to_vec(), "batch {batch}");
    }
}

#[test]
fn torn_journal_append_never_surfaces_a_half_written_txn() {
    // The torn-write model: the device acknowledges the append but only
    // a prefix of each block actually lands (the rest keeps the old
    // sector contents). A whole transaction — Begin, Data, Commit — is
    // appended through such a device, so even its Commit frame "made
    // it" as far as the writer knows. Frame checksums must confine the
    // lie: replay applies exactly the intact prefix, never a byte of
    // the torn transaction.
    // The tear keeps a prefix of the *block*, so the damage to the new
    // frames depends on where the append head sits inside it: these
    // offsets (added to the head position) land the tear before the
    // first new frame, inside it, and inside the Data/Commit frames.
    for &batch in &BATCH_SIZES {
        for tear_at in [0usize, 5, 40] {
            let r = rig(batch);
            let oid = r.ts.store().create_default(0).unwrap();
            commit_markers(&r.ts, oid, &["intact-one-", "intact-two-"]);
            let bs = r.device.block_size();
            let head_in_block = (r.ts.journal().head_offset() as usize) % bs;
            let keep_bytes = (head_in_block + tear_at).min(bs - 1);
            // A second handle onto the same journal region, through a
            // device that tears every write and reports success. It
            // opens at the existing head and continues the sequence —
            // exactly the frames a real appender would have written.
            let sb = r.ts.store().superblock();
            let torn_device = Arc::new(FaultDevice::new(
                Arc::clone(&r.device) as Arc<dyn BlockDevice>,
                FaultConfig {
                    write: OpFault::torn_write(1, keep_bytes, true),
                    ..Default::default()
                },
            ));
            let torn_journal = Journal::new(
                Arc::clone(&torn_device),
                sb.journal_start,
                sb.journal_blocks,
            )
            .unwrap();
            let phantom = hfad_osd::TxnOp::Write {
                oid,
                offset: 0,
                data: b"PHANTOM__".to_vec(),
            }
            .encode();
            torn_journal.append(777, RecordKind::Begin, b"").unwrap();
            torn_journal
                .append(777, RecordKind::Data, &phantom)
                .unwrap();
            torn_journal.append(777, RecordKind::Commit, b"").unwrap();
            assert!(
                torn_device.torn_writes() > 0,
                "batch {batch}, tear {tear_at}: the fault device must \
                 actually have torn the appends"
            );
            let applied = r.crash_and_replay(&[oid]);
            assert_eq!(
                applied, 2,
                "batch {batch}, tear {tear_at}: only the intact prefix replays"
            );
            let data = r.ts.store().read(oid, 0, 64).unwrap();
            assert_eq!(
                data,
                b"intact-one-intact-two-".to_vec(),
                "batch {batch}, tear {tear_at}"
            );
            // The store stays writable: the next commit overwrites the
            // torn garbage at the head.
            let mut txn = r.ts.begin();
            txn.write(oid, 22, b"after").unwrap();
            txn.commit().unwrap();
            assert_eq!(r.crash_and_replay(&[oid]), 3);
            assert_eq!(
                r.ts.store().read(oid, 0, 64).unwrap(),
                b"intact-one-intact-two-after".to_vec(),
                "batch {batch}, tear {tear_at}"
            );
        }
    }
}

#[test]
fn journal_fills_auto_checkpoint_keeps_commits_flowing() {
    for &batch in &BATCH_SIZES {
        let r = rig(batch);
        let oid = r.ts.store().create_default(0).unwrap();
        // Push far more commit bytes through than the 64-block region
        // holds. The seed surfaced JournalFull to the unlucky caller;
        // now the commit path checkpoints automatically and retries, so
        // every transaction that fits an *empty* region succeeds.
        let payload = vec![0x42u8; 8 * 1024];
        let total = 64u64;
        for i in 0..total {
            let mut txn = r.ts.begin();
            txn.write(oid, i * payload.len() as u64, &payload).unwrap();
            txn.commit()
                .unwrap_or_else(|e| panic!("batch {batch}, commit {i}: {e}"));
        }
        assert!(
            r.ts.auto_checkpoints() >= 1,
            "batch {batch}: the region must have filled at least once"
        );
        assert_eq!(
            r.ts.store().len(oid).unwrap(),
            total * payload.len() as u64,
            "batch {batch}: every acknowledged commit applied"
        );
        // The journal now holds only the post-checkpoint tail, and that
        // tail replays cleanly (replay is idempotent for redo writes).
        let replayed = r.ts.replay().unwrap();
        assert!(replayed < total, "batch {batch}: checkpoints truncated");
        assert_eq!(
            r.ts.store().len(oid).unwrap(),
            total * payload.len() as u64,
            "batch {batch}: replay after checkpoint must not corrupt"
        );
        // A transaction too large for even an empty region is the one
        // case that still surfaces the typed error.
        let mut txn = r.ts.begin();
        txn.write(oid, 0, &vec![0u8; 512 * 1024]).unwrap();
        let err = txn.commit().unwrap_err();
        assert!(
            matches!(err, OsdError::Storage(StorageError::JournalFull { .. })),
            "batch {batch}: impossible fit must stay JournalFull, got {err}"
        );
        // Manual checkpoint still reclaims the region explicitly.
        r.ts.checkpoint().unwrap();
        let mut txn = r.ts.begin();
        txn.write(oid, 0, b"post-checkpoint").unwrap();
        txn.commit().unwrap();
        assert_eq!(
            r.ts.store().read(oid, 0, 15).unwrap(),
            b"post-checkpoint".to_vec(),
            "batch {batch}"
        );
    }
}

#[test]
fn reformatting_a_used_device_does_not_resurrect_the_old_journal() {
    // A device that carried a journaled store is reformatted with
    // ObjectStore::create. The new store's journal must scan empty: the
    // old instance's frames (valid CRCs, consecutive seqs) must not be
    // adopted, or replay() would apply a dead store's transactions.
    let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
    let make_store = || {
        Arc::new(
            ObjectStore::create(
                Arc::clone(&device) as Arc<dyn BlockDevice>,
                StoreConfig {
                    journal_blocks: 64,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    };
    {
        let ts = TxnStore::new(make_store()).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        commit_markers(&ts, oid, &["old-life-1", "old-life-2"]);
        assert_eq!(ts.journal().committed_payloads().unwrap().len(), 2);
    }
    let ts = TxnStore::new(make_store()).unwrap();
    assert_eq!(
        ts.journal().committed_payloads().unwrap().len(),
        0,
        "formatting must leave an empty journal"
    );
    assert_eq!(ts.replay().unwrap(), 0);
    // And the fresh journal is fully usable.
    let oid = ts.store().create_default(0).unwrap();
    commit_markers(&ts, oid, &["new-life"]);
    let committed = ts.journal().committed_payloads().unwrap();
    assert_eq!(committed.len(), 1);
}

#[test]
fn concurrent_batch_overflow_fails_only_the_oversized_txn() {
    // Force all four transactions into one leader batch with a long
    // max_wait; the oversized one must fail typed while its batch-mates
    // commit, apply and replay.
    let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
    let store = Arc::new(
        ObjectStore::create(
            Arc::clone(&device) as Arc<dyn BlockDevice>,
            StoreConfig {
                journal_blocks: 3, // 4 KiB ring: small txns fit, big cannot
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let ts = Arc::new(
        TxnStore::with_config(
            store,
            GroupCommitConfig::batched(8, Duration::from_millis(50)),
        )
        .unwrap(),
    );
    let oid = ts.store().create_default(0).unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let handles: Vec<_> = (0..4usize)
        .map(|t| {
            let ts = Arc::clone(&ts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut txn = ts.begin();
                if t == 0 {
                    txn.write(oid, 4096, &vec![0xEE; 64 * 1024]).unwrap();
                } else {
                    txn.write(oid, (t * 8) as u64, format!("ok-{t}").as_bytes())
                        .unwrap();
                }
                (t, txn.commit())
            })
        })
        .collect();
    for h in handles {
        let (t, result) = h.join().unwrap();
        if t == 0 {
            assert!(matches!(
                result,
                Err(OsdError::Storage(StorageError::JournalFull { .. }))
            ));
        } else {
            result.unwrap();
        }
    }
    // The oversized write never reached the store.
    assert!(ts.store().len(oid).unwrap() < 4096 + 64 * 1024);
    // The failed commit auto-checkpointed before its (futile) retry, so
    // the journal may hold anywhere from zero to all three small
    // transactions — but the *store* must hold exactly their effects,
    // and whatever the journal retains must replay to the same state.
    let committed = ts.journal().committed_payloads().unwrap();
    assert!(committed.len() <= 3);
    assert_eq!(ts.replay().unwrap() as usize, committed.len());
    for t in 1..4usize {
        let data = ts.store().read(oid, (t * 8) as u64, 4).unwrap();
        assert_eq!(data, format!("ok-{t}").into_bytes());
    }
}

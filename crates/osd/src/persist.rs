//! Crash-safe file-backed persistence for the transactional OSD.
//!
//! The in-memory engine already has the full recovery discipline — a
//! circular write-ahead journal, group commit, background checkpoints —
//! but the seed only ever ran it over a `MemDevice`, so "recovery" meant
//! replaying into the same process. This module makes the discipline mean
//! something across `kill -9`: a [`FileDevice`]-backed store whose on-disk
//! state is always reconstructible, byte for byte, no matter where a crash
//! (or a torn sector) lands.
//!
//! # The persistence protocol
//!
//! A persistent store's device is laid out by
//! [`Superblock::layout_persistent`]: superblock, journal, two metadata
//! ping-pong slots, a doublewrite staging region, then the data area. The
//! rules that make it crash-safe:
//!
//! * **Home pages are only written by checkpoints.** The block cache runs
//!   in retain-dirty mode: eviction, flush and write-behind never push a
//!   dirty page to its home address. Between checkpoints the file holds
//!   exactly the page set of the last checkpoint.
//! * **Commits are journal-only I/O.** A commit appends redo records to
//!   the journal on the *raw* device (beneath the cache) and fsyncs; the
//!   applied effects live in dirty cache pages.
//! * **A checkpoint is one atomic batch.** It collects the dirty page
//!   set, snapshots the store metadata ([`StoreMeta`]: table roots,
//!   allocator state, id floors, and the journal *replay floor* — the
//!   sequence number the next post-checkpoint record will carry), and
//!   stages pages *and* metadata together through the
//!   [`Doublewrite`] region (stage → fsync → install → journal reset,
//!   which fsyncs). A crash anywhere leaves either the old checkpoint
//!   fully intact or the new one fully recoverable from the staged batch.
//! * **Recovery = doublewrite redo + metadata load + floored replay.**
//!   [`open_file`] re-installs any staged batch, loads the newer valid
//!   metadata slot, rebuilds the allocator and object-table shards from
//!   it, and replays only journal transactions whose commit sequence is
//!   at or above the metadata's replay floor — everything below it is
//!   already in the home pages.
//!
//! # Multi-process arbitration
//!
//! Opens are arbitrated by the [`ProcLock`] queue-fair lockfile protocol:
//! a writer ([`open_file`] / [`create_file`]) holds the exclusive lock for
//! the store's lifetime, readers ([`open_file_reader`]) hold it shared, and
//! a `kill -9`'d holder is detected by pid + start-time staleness and
//! healed by the next contender. Writer and reader stores therefore never
//! coexist; the queue guarantees writers are not starved by reader churn.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hfad_storage::{
    fnv1a, Allocator, AllocatorSnapshot, BlockDevice, BuddyAllocator, BumpAllocator, CachedDevice,
    Doublewrite, FileDevice, GroupCommitConfig, Journal, LockMode, ProcLock, RecordKind,
    Superblock, DEFAULT_BLOCK_SIZE,
};

use crate::error::{OsdError, Result};
use crate::store::{AllocatorKind, ObjectStore, StoreConfig};
use crate::txn::TxnStore;

/// Journal blocks used when the caller's [`StoreConfig::journal_blocks`]
/// is zero (a persistent store cannot run without a journal).
pub const DEFAULT_PERSIST_JOURNAL_BLOCKS: u64 = 256;

/// Block-cache capacity used when [`StoreConfig::cache_blocks`] is zero
/// (retain-dirty persistence requires the cache tier).
pub const DEFAULT_PERSIST_CACHE_BLOCKS: usize = 1024;

/// Blocks in each of the two metadata ping-pong slots.
pub const META_SLOT_BLOCKS: u64 = 32;

/// Magic number leading an encoded [`StoreMeta`].
pub const META_MAGIC: u64 = 0x6866_6164_5f6d_6574; // "hfad_met"

/// Sizes the doublewrite region for a device: an eighth of the device,
/// clamped to `[128, 2048]` blocks.
fn default_dw_blocks(block_count: u64) -> u64 {
    (block_count / 8).clamp(128, 2048)
}

/// A checkpointed snapshot of everything the store cannot rebuild from
/// the data area alone: object-table shard roots, allocator state, the id
/// floors, and the journal replay floor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Checkpoint epoch; each checkpoint writes epoch `e` to slot `e % 2`,
    /// and open picks the valid slot with the higher epoch.
    pub epoch: u64,
    /// Journal sequence number of the first record *not* covered by this
    /// checkpoint: recovery replays only commits with `seq >= replay_floor`.
    pub replay_floor: u64,
    /// Floor for transaction ids issued after reopen.
    pub next_txn: u64,
    /// Floor for object ids issued after reopen (the oid allocator's
    /// range head).
    pub next_oid: u64,
    /// Data-area allocator state.
    pub alloc: AllocatorSnapshot,
    /// Per-shard object table state: `(root_page, live_objects)`.
    pub shards: Vec<(u64, u64)>,
}

impl StoreMeta {
    /// Serialises the metadata with a trailing FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&META_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.replay_floor.to_le_bytes());
        out.extend_from_slice(&self.next_txn.to_le_bytes());
        out.extend_from_slice(&self.next_oid.to_le_bytes());
        out.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for &(root, live) in &self.shards {
            out.extend_from_slice(&root.to_le_bytes());
            out.extend_from_slice(&live.to_le_bytes());
        }
        match &self.alloc {
            AllocatorSnapshot::Buddy(chunks) => {
                out.push(0);
                out.extend_from_slice(&(chunks.len() as u64).to_le_bytes());
                for &(offset, order) in chunks {
                    out.extend_from_slice(&offset.to_le_bytes());
                    out.extend_from_slice(&order.to_le_bytes());
                }
            }
            AllocatorSnapshot::Bump(high_water) => {
                out.push(1);
                out.extend_from_slice(&high_water.to_le_bytes());
            }
            AllocatorSnapshot::Unsupported => out.push(2),
        }
        let crc = fnv1a(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserialises metadata written by [`encode`](Self::encode),
    /// verifying magic and checksum. The buffer may carry trailing
    /// padding (the slot is block-aligned).
    pub fn decode(buf: &[u8]) -> Result<Self> {
        fn take_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
            let end = pos
                .checked_add(8)
                .filter(|&e| e <= buf.len())
                .ok_or_else(|| OsdError::Corrupt("store metadata truncated".into()))?;
            let v = u64::from_le_bytes(buf[*pos..end].try_into().expect("u64"));
            *pos = end;
            Ok(v)
        }
        let mut pos = 0usize;
        if take_u64(buf, &mut pos)? != META_MAGIC {
            return Err(OsdError::Corrupt("store metadata magic mismatch".into()));
        }
        let epoch = take_u64(buf, &mut pos)?;
        let replay_floor = take_u64(buf, &mut pos)?;
        let next_txn = take_u64(buf, &mut pos)?;
        let next_oid = take_u64(buf, &mut pos)?;
        let shard_count = take_u64(buf, &mut pos)? as usize;
        if shard_count == 0 || shard_count > crate::shard::MAX_SHARDS {
            return Err(OsdError::Corrupt(format!(
                "store metadata carries implausible shard count {shard_count}"
            )));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let root = take_u64(buf, &mut pos)?;
            let live = take_u64(buf, &mut pos)?;
            shards.push((root, live));
        }
        let kind = *buf
            .get(pos)
            .ok_or_else(|| OsdError::Corrupt("store metadata truncated".into()))?;
        pos += 1;
        let alloc = match kind {
            0 => {
                let count = take_u64(buf, &mut pos)? as usize;
                let mut chunks = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let offset = take_u64(buf, &mut pos)?;
                    let order_end = pos
                        .checked_add(4)
                        .filter(|&e| e <= buf.len())
                        .ok_or_else(|| OsdError::Corrupt("store metadata truncated".into()))?;
                    let order = u32::from_le_bytes(buf[pos..order_end].try_into().expect("u32"));
                    pos = order_end;
                    chunks.push((offset, order));
                }
                AllocatorSnapshot::Buddy(chunks)
            }
            1 => AllocatorSnapshot::Bump(take_u64(buf, &mut pos)?),
            2 => AllocatorSnapshot::Unsupported,
            other => {
                return Err(OsdError::Corrupt(format!(
                    "unknown allocator snapshot kind {other}"
                )))
            }
        };
        let stored_crc = take_u64(buf, &mut pos)?;
        if fnv1a(&buf[..pos - 8]) != stored_crc {
            return Err(OsdError::Corrupt("store metadata checksum mismatch".into()));
        }
        Ok(StoreMeta {
            epoch,
            replay_floor,
            next_txn,
            next_oid,
            alloc,
            shards,
        })
    }
}

/// The persistence context a writer store carries: the raw device beneath
/// the cache, the doublewrite region, the metadata slot geometry, and the
/// store-lifetime exclusive [`ProcLock`].
pub struct PersistCtx {
    /// The raw (un-cached) device: journal appends and checkpoint
    /// installs go here so cache state never reorders durability.
    pub(crate) raw: Arc<dyn BlockDevice>,
    /// The doublewrite staging region.
    pub(crate) dw: Doublewrite,
    /// First block of the metadata region.
    pub(crate) meta_start: u64,
    /// Blocks in each of the two metadata slots.
    pub(crate) meta_slot_blocks: u64,
    /// Device block size.
    pub(crate) block_size: usize,
    /// Epoch the *next* checkpoint will write.
    pub(crate) epoch: AtomicU64,
    /// Replay floor recorded by the most recent checkpoint.
    pub(crate) replay_floor: AtomicU64,
    /// Dirty-page count at which the commit path triggers a checkpoint.
    pub(crate) checkpoint_threshold: usize,
    /// Held for the store's lifetime; released (and its lockfiles
    /// removed) on drop.
    _lock: ProcLock,
}

impl PersistCtx {
    /// Epoch the next checkpoint will write.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Replay floor recorded by the most recent checkpoint.
    pub fn replay_floor(&self) -> u64 {
        self.replay_floor.load(Ordering::Acquire)
    }

    /// Dirty-page count at which commits trigger a checkpoint.
    pub fn checkpoint_threshold(&self) -> usize {
        self.checkpoint_threshold
    }

    /// Doublewrite frame capacity (the hard batch ceiling).
    pub fn dw_capacity(&self) -> usize {
        self.dw.capacity()
    }

    /// Encodes `meta` into block-sized frames homed in the slot for
    /// `meta.epoch`, ready to ride a doublewrite batch. Fails loudly if
    /// the metadata outgrew the slot.
    pub(crate) fn meta_frames(&self, meta: &StoreMeta) -> Result<Vec<(u64, Arc<[u8]>)>> {
        let bytes = meta.encode();
        let slot_bytes = self.meta_slot_blocks as usize * self.block_size;
        if bytes.len() > slot_bytes {
            return Err(OsdError::Corrupt(format!(
                "store metadata of {} bytes exceeds the {} byte slot; \
                 recreate the store with larger metadata slots",
                bytes.len(),
                slot_bytes
            )));
        }
        let slot = meta.epoch % 2;
        let base = self.meta_start + slot * self.meta_slot_blocks;
        let mut frames = Vec::new();
        for (i, chunk) in bytes.chunks(self.block_size).enumerate() {
            let mut block = vec![0u8; self.block_size];
            block[..chunk.len()].copy_from_slice(chunk);
            frames.push((base + i as u64, Arc::<[u8]>::from(block)));
        }
        Ok(frames)
    }
}

/// Reads both metadata slots and returns the valid one with the higher
/// epoch, or `None` if neither decodes (a store that never completed its
/// first checkpoint).
pub fn load_meta<D: BlockDevice + ?Sized>(
    device: &D,
    sb: &Superblock,
) -> Result<Option<StoreMeta>> {
    let slot_blocks = sb.meta_slot_blocks();
    let bs = device.block_size();
    let mut best: Option<StoreMeta> = None;
    for slot in 0..2u64 {
        let base = sb.meta_start + slot * slot_blocks;
        let mut buf = vec![0u8; slot_blocks as usize * bs];
        let mut read_ok = true;
        for i in 0..slot_blocks {
            let start = i as usize * bs;
            if device
                .read_block(base + i, &mut buf[start..start + bs])
                .is_err()
            {
                read_ok = false;
                break;
            }
        }
        if !read_ok {
            continue;
        }
        if let Ok(meta) = StoreMeta::decode(&buf) {
            if best.as_ref().is_none_or(|b| meta.epoch > b.epoch) {
                best = Some(meta);
            }
        }
    }
    Ok(best)
}

/// Resolved sizing for a persistent store.
struct PersistGeometry {
    journal_blocks: u64,
    cache_blocks: usize,
}

fn resolve_geometry(config: &StoreConfig) -> PersistGeometry {
    PersistGeometry {
        journal_blocks: if config.journal_blocks > 0 {
            config.journal_blocks
        } else {
            DEFAULT_PERSIST_JOURNAL_BLOCKS
        },
        cache_blocks: if config.cache_blocks > 0 {
            config.cache_blocks
        } else {
            DEFAULT_PERSIST_CACHE_BLOCKS
        },
    }
}

fn restore_allocator(sb: &Superblock, snapshot: &AllocatorSnapshot) -> Result<Arc<dyn Allocator>> {
    Ok(match snapshot {
        AllocatorSnapshot::Buddy(chunks) => Arc::new(BuddyAllocator::restore(
            sb.data_start,
            sb.data_blocks,
            chunks,
        )?),
        AllocatorSnapshot::Bump(high_water) => Arc::new(BumpAllocator::restore(
            sb.data_start,
            sb.data_blocks,
            *high_water,
        )?),
        AllocatorSnapshot::Unsupported => {
            return Err(OsdError::Corrupt(
                "store metadata carries an unsupported allocator snapshot".into(),
            ))
        }
    })
}

fn allocator_kind(snapshot: &AllocatorSnapshot) -> AllocatorKind {
    match snapshot {
        AllocatorSnapshot::Bump(_) => AllocatorKind::Bump,
        _ => AllocatorKind::Buddy,
    }
}

/// Creates (formats) a persistent store at `path` with `capacity_bytes`
/// of backing file, returning the transactional handle.
///
/// Takes the exclusive multi-process lock for the store's lifetime, lays
/// out the persistent superblock, and runs an initial checkpoint so the
/// freshly created (empty) store is durable before this returns. A crash
/// mid-create leaves a store that [`open_file`] rejects as corrupt —
/// recreate it.
pub fn create_file<P: AsRef<Path>>(
    path: P,
    capacity_bytes: u64,
    config: StoreConfig,
    commit: GroupCommitConfig,
) -> Result<Arc<TxnStore>> {
    let path = path.as_ref();
    let lock = ProcLock::acquire(path, LockMode::Exclusive)?;
    let bs = DEFAULT_BLOCK_SIZE;
    let block_count = capacity_bytes / bs as u64;
    let geometry = resolve_geometry(&config);
    let raw: Arc<dyn BlockDevice> = Arc::new(FileDevice::create(path, block_count, bs)?);
    let sb = Superblock::layout_persistent(
        block_count,
        bs,
        geometry.journal_blocks,
        META_SLOT_BLOCKS,
        default_dw_blocks(block_count),
    )?;
    // The superblock goes to the raw device, never through the cache: it
    // must not linger as a dirty frame awaiting a checkpoint.
    sb.write_to(&raw)?;
    Journal::new(Arc::clone(&raw), sb.journal_start, sb.journal_blocks)?.reset_full()?;
    raw.flush()?;
    let dw = Doublewrite::new(Arc::clone(&raw), sb.dw_start, sb.dw_blocks)?;
    let checkpoint_threshold = (dw.capacity() / 4).max(1);
    let cache = Arc::new(CachedDevice::with_shards(
        Arc::clone(&raw),
        geometry.cache_blocks,
        config.cache_shards,
    ));
    cache.set_retain_dirty(true);
    let allocator: Arc<dyn Allocator> = match config.allocator {
        AllocatorKind::Buddy => Arc::new(BuddyAllocator::new(sb.data_start, sb.data_blocks)),
        AllocatorKind::Bump => Arc::new(BumpAllocator::new(sb.data_start, sb.data_blocks)),
    };
    let persist = Arc::new(PersistCtx {
        raw,
        dw,
        meta_start: sb.meta_start,
        meta_slot_blocks: sb.meta_slot_blocks(),
        block_size: bs,
        epoch: AtomicU64::new(0),
        replay_floor: AtomicU64::new(1),
        checkpoint_threshold,
        _lock: lock,
    });
    let store = Arc::new(ObjectStore::build_persistent(
        cache,
        allocator,
        sb,
        config,
        None,
        1,
        Some(persist),
        None,
    )?);
    let ts = Arc::new(TxnStore::with_config(store, commit)?);
    // The initial checkpoint makes the empty store (its freshly created
    // table shards, allocator state and epoch-0 metadata) durable.
    ts.checkpoint()?;
    Ok(ts)
}

/// Opens an existing persistent store at `path` as the (single) writer,
/// running full crash recovery: doublewrite redo, metadata load, floored
/// journal replay, then a checkpoint that makes the recovered state
/// durable. Returns the transactional handle and the number of replayed
/// operations.
pub fn open_file<P: AsRef<Path>>(
    path: P,
    config: StoreConfig,
    commit: GroupCommitConfig,
) -> Result<(Arc<TxnStore>, u64)> {
    let path = path.as_ref();
    let lock = ProcLock::acquire(path, LockMode::Exclusive)?;
    let bs = DEFAULT_BLOCK_SIZE;
    let raw: Arc<dyn BlockDevice> = Arc::new(FileDevice::open(path, bs)?);
    let sb = Superblock::read_from(&raw)?;
    if !sb.is_persistent() {
        return Err(OsdError::Corrupt(
            "store file lacks the persistent-mode regions (metadata / doublewrite)".into(),
        ));
    }
    if sb.block_size as usize != bs {
        return Err(OsdError::Corrupt(format!(
            "store block size {} does not match the expected {bs}",
            sb.block_size
        )));
    }
    let dw = Doublewrite::new(Arc::clone(&raw), sb.dw_start, sb.dw_blocks)?;
    // Doublewrite redo: a crash mid-install left a fully staged batch;
    // re-install it (idempotent) and make it durable before anything else
    // reads the home pages.
    if dw.recover()?.is_some() {
        raw.flush()?;
    }
    let meta = load_meta(&raw, &sb)?.ok_or_else(|| {
        OsdError::Corrupt("store has no valid metadata slot (crashed during create?)".into())
    })?;
    let geometry = resolve_geometry(&config);
    let checkpoint_threshold = (dw.capacity() / 4).max(1);
    let cache = Arc::new(CachedDevice::with_shards(
        Arc::clone(&raw),
        geometry.cache_blocks,
        config.cache_shards,
    ));
    cache.set_retain_dirty(true);
    let allocator = restore_allocator(&sb, &meta.alloc)?;
    let mut config = config;
    config.allocator = allocator_kind(&meta.alloc);
    let persist = Arc::new(PersistCtx {
        raw,
        dw,
        meta_start: sb.meta_start,
        meta_slot_blocks: sb.meta_slot_blocks(),
        block_size: bs,
        epoch: AtomicU64::new(meta.epoch + 1),
        replay_floor: AtomicU64::new(meta.replay_floor),
        checkpoint_threshold,
        _lock: lock,
    });
    let store = Arc::new(ObjectStore::build_persistent(
        cache,
        allocator,
        sb,
        config,
        Some(&meta.shards),
        meta.next_oid,
        Some(persist),
        None,
    )?);
    let ts = Arc::new(TxnStore::with_config(store, commit)?);
    ts.floor_next_txn(meta.next_txn);
    let replayed = ts.replay_from_floor(meta.replay_floor)?;
    // Fold the replayed state into a fresh checkpoint: recovery work is
    // done once, not on every subsequent open, and the journal empties.
    ts.checkpoint()?;
    Ok((ts, replayed))
}

/// Opens a persistent store read-only, holding the shared multi-process
/// lock for the store's lifetime.
///
/// Readers have no recovery machinery, so a store with pending recovery
/// work — a staged doublewrite batch or unreplayed journal commits — is
/// refused with [`OsdError::NeedsRecovery`] asking for a writer open
/// first (distinct from `Corrupt`: the store is intact). A store closed
/// cleanly (every writer checkpoint empties the journal and clears the
/// staging region) always passes.
pub fn open_file_reader<P: AsRef<Path>>(path: P, config: StoreConfig) -> Result<Arc<ObjectStore>> {
    let path = path.as_ref();
    let lock = ProcLock::acquire(path, LockMode::Shared)?;
    let bs = DEFAULT_BLOCK_SIZE;
    let raw: Arc<dyn BlockDevice> = Arc::new(FileDevice::open(path, bs)?);
    let sb = Superblock::read_from(&raw)?;
    if !sb.is_persistent() {
        return Err(OsdError::Corrupt(
            "store file lacks the persistent-mode regions (metadata / doublewrite)".into(),
        ));
    }
    let dw = Doublewrite::new(Arc::clone(&raw), sb.dw_start, sb.dw_blocks)?;
    if dw.read_valid_batch()?.is_some() {
        return Err(OsdError::NeedsRecovery(
            "staged checkpoint batch; open a writer first".into(),
        ));
    }
    let meta = load_meta(&raw, &sb)?.ok_or_else(|| {
        OsdError::Corrupt("store has no valid metadata slot (crashed during create?)".into())
    })?;
    let journal = Journal::new(Arc::clone(&raw), sb.journal_start, sb.journal_blocks)?;
    let needs_replay = journal
        .recover()?
        .iter()
        .any(|r| r.kind == RecordKind::Commit && r.seq >= meta.replay_floor);
    if needs_replay {
        return Err(OsdError::NeedsRecovery(
            "unreplayed journal commits; open a writer first".into(),
        ));
    }
    let geometry = resolve_geometry(&config);
    let cache = Arc::new(CachedDevice::with_shards(
        Arc::clone(&raw),
        geometry.cache_blocks,
        config.cache_shards,
    ));
    let allocator = restore_allocator(&sb, &meta.alloc)?;
    let mut config = config;
    config.allocator = allocator_kind(&meta.alloc);
    let store = ObjectStore::build_persistent(
        cache,
        allocator,
        sb,
        config,
        Some(&meta.shards),
        meta.next_oid,
        None,
        Some(lock),
    )?;
    Ok(Arc::new(store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfad_storage::MemDevice;

    fn sample_meta() -> StoreMeta {
        StoreMeta {
            epoch: 7,
            replay_floor: 1234,
            next_txn: 99,
            next_oid: 4096,
            alloc: AllocatorSnapshot::Buddy(vec![(100, 3), (200, 0), (512, 7)]),
            shards: vec![(10, 2), (20, 0), (30, 5), (40, 1)],
        }
    }

    #[test]
    fn store_meta_round_trips() {
        for meta in [
            sample_meta(),
            StoreMeta {
                alloc: AllocatorSnapshot::Bump(777),
                ..sample_meta()
            },
        ] {
            let mut bytes = meta.encode();
            // Block-aligned padding must not confuse decode.
            bytes.resize(bytes.len() + 100, 0);
            assert_eq!(StoreMeta::decode(&bytes).unwrap(), meta);
        }
    }

    #[test]
    fn store_meta_rejects_corruption() {
        let meta = sample_meta();
        let good = meta.encode();
        // Flip one byte anywhere before the CRC: decode must refuse.
        for pos in [0usize, 8, 30, good.len() - 9] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(StoreMeta::decode(&bad).is_err(), "flip at {pos} accepted");
        }
        assert!(StoreMeta::decode(&[]).is_err());
        assert!(StoreMeta::decode(&good[..good.len() - 4]).is_err());
    }

    use crate::meta::{unix_now, ObjectMeta};
    use std::time::Duration;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hfad-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join(name);
        std::fs::remove_file(&store).ok();
        let mut lck = store.file_name().unwrap().to_os_string();
        lck.push(".lck");
        std::fs::remove_dir_all(store.with_file_name(lck)).ok();
        store
    }

    /// Simulates `kill -9`: the writer is leaked (no final checkpoint, no
    /// cache writeback) and its lockfiles are swept as a dead holder's
    /// would be.
    fn crash(ts: Arc<TxnStore>, path: &Path) {
        std::mem::forget(ts);
        let mut lck = path.file_name().unwrap().to_os_string();
        lck.push(".lck");
        std::fs::remove_dir_all(path.with_file_name(lck)).unwrap();
    }

    #[test]
    fn create_write_reopen_round_trip() {
        let path = scratch("round_trip.hfad");
        let oid = {
            let ts =
                create_file(&path, 8 << 20, StoreConfig::default(), Default::default()).unwrap();
            let mut txn = ts.begin();
            let oid = txn
                .create(ObjectMeta::new(7, 7, 0o600, unix_now()))
                .unwrap();
            txn.write(oid, 0, b"survives process death").unwrap();
            txn.commit().unwrap();
            oid
        };
        // Clean close (Drop checkpointed): reopen must replay nothing.
        let (ts, replayed) = open_file(&path, StoreConfig::default(), Default::default()).unwrap();
        assert_eq!(replayed, 0, "clean close leaves nothing to replay");
        assert_eq!(
            ts.store().read(oid, 0, 100).unwrap(),
            b"survives process death".to_vec()
        );
        assert_eq!(ts.store().meta(oid).unwrap().security.uid, 7);
        drop(ts);
        // And a reader sees the same bytes.
        let reader = open_file_reader(&path, StoreConfig::default()).unwrap();
        assert_eq!(
            reader.read(oid, 0, 100).unwrap(),
            b"survives process death".to_vec()
        );
    }

    #[test]
    fn uncheckpointed_commits_replay_on_reopen() {
        let path = scratch("replay.hfad");
        let ts = create_file(&path, 8 << 20, StoreConfig::default(), Default::default()).unwrap();
        let mut txn = ts.begin();
        let base = txn
            .create(ObjectMeta::new(0, 0, 0o644, unix_now()))
            .unwrap();
        txn.write(base, 0, b"checkpointed state").unwrap();
        txn.commit().unwrap();
        ts.checkpoint().unwrap();
        // Post-checkpoint commits live only in the journal + dirty cache.
        let mut txn = ts.begin();
        let fresh = txn
            .create(ObjectMeta::new(0, 0, 0o644, unix_now()))
            .unwrap();
        txn.write(fresh, 0, b"journal only").unwrap();
        txn.write(base, 0, b"CHECKPOINTED state").unwrap();
        txn.commit().unwrap();
        crash(ts, &path);
        let (ts, replayed) = open_file(&path, StoreConfig::default(), Default::default()).unwrap();
        assert!(
            replayed >= 3,
            "create + two writes must replay, got {replayed}"
        );
        assert_eq!(
            ts.store().read(base, 0, 100).unwrap(),
            b"CHECKPOINTED state".to_vec()
        );
        assert_eq!(
            ts.store().read(fresh, 0, 100).unwrap(),
            b"journal only".to_vec()
        );
        // The replayed create's id must never be reissued.
        let next = ts.store().create_default(0).unwrap();
        assert!(next.as_u64() > fresh.as_u64());
    }

    #[test]
    fn reader_refuses_unrecovered_store_then_accepts_after_writer() {
        let path = scratch("reader_gate.hfad");
        let ts = create_file(&path, 8 << 20, StoreConfig::default(), Default::default()).unwrap();
        let mut txn = ts.begin();
        let oid = txn
            .create(ObjectMeta::new(0, 0, 0o644, unix_now()))
            .unwrap();
        txn.write(oid, 0, b"needs redo").unwrap();
        txn.commit().unwrap();
        crash(ts, &path);
        let err = match open_file_reader(&path, StoreConfig::default()) {
            Ok(_) => panic!("reader must refuse a crashed store"),
            Err(e) => e,
        };
        assert!(
            matches!(err, OsdError::NeedsRecovery(_)),
            "reader must refuse a crashed store with NeedsRecovery (not \
             Corrupt), got: {err}"
        );
        assert!(err.to_string().contains("requires recovery"));
        // A writer open recovers; after it closes the reader succeeds.
        let (ts, replayed) = open_file(&path, StoreConfig::default(), Default::default()).unwrap();
        assert!(replayed > 0);
        drop(ts);
        let reader = open_file_reader(&path, StoreConfig::default()).unwrap();
        assert_eq!(reader.read(oid, 0, 100).unwrap(), b"needs redo".to_vec());
    }

    #[test]
    fn deletes_survive_crash_recovery() {
        let path = scratch("deletes.hfad");
        let ts = create_file(&path, 8 << 20, StoreConfig::default(), Default::default()).unwrap();
        let (keep, gone) = {
            let mut txn = ts.begin();
            let keep = txn
                .create(ObjectMeta::new(0, 0, 0o644, unix_now()))
                .unwrap();
            let gone = txn
                .create(ObjectMeta::new(0, 0, 0o644, unix_now()))
                .unwrap();
            txn.write(keep, 0, b"kept").unwrap();
            txn.write(gone, 0, b"doomed").unwrap();
            txn.commit().unwrap();
            (keep, gone)
        };
        ts.checkpoint().unwrap();
        let mut txn = ts.begin();
        txn.delete(gone).unwrap();
        txn.commit().unwrap();
        crash(ts, &path);
        let (ts, _) = open_file(&path, StoreConfig::default(), Default::default()).unwrap();
        assert_eq!(ts.store().read(keep, 0, 100).unwrap(), b"kept".to_vec());
        assert!(matches!(
            ts.store().read(gone, 0, 1),
            Err(OsdError::NoSuchObject(_))
        ));
        assert_eq!(ts.store().object_count(), 1);
    }

    #[test]
    fn second_writer_blocked_while_first_holds_lock() {
        let path = scratch("writer_excl.hfad");
        let ts = create_file(&path, 4 << 20, StoreConfig::default(), Default::default()).unwrap();
        // The store-lifetime exclusive lock must make a concurrent writer
        // open fail (bounded wait, not deadlock) while this one is live.
        let t0 = std::time::Instant::now();
        let lock =
            ProcLock::acquire_timeout(&path, LockMode::Exclusive, Duration::from_millis(200));
        assert!(lock.is_err(), "second exclusive acquire must time out");
        assert!(t0.elapsed() < Duration::from_secs(5));
        drop(ts);
        // After a clean close the lock is free again.
        ProcLock::acquire_timeout(&path, LockMode::Exclusive, Duration::from_millis(500)).unwrap();
    }

    #[test]
    fn load_meta_picks_higher_valid_epoch() {
        let dev = MemDevice::new(256, 512);
        let sb = Superblock::layout_persistent(256, 512, 16, 8, 32).unwrap();
        let older = StoreMeta {
            epoch: 4,
            ..sample_meta()
        };
        let newer = StoreMeta {
            epoch: 5,
            ..sample_meta()
        };
        let write_slot = |meta: &StoreMeta| {
            let base = sb.meta_start + (meta.epoch % 2) * sb.meta_slot_blocks();
            let bytes = meta.encode();
            for (i, chunk) in bytes.chunks(512).enumerate() {
                let mut block = vec![0u8; 512];
                block[..chunk.len()].copy_from_slice(chunk);
                dev.write_block(base + i as u64, &block).unwrap();
            }
        };
        assert!(load_meta(&dev, &sb).unwrap().is_none(), "empty slots");
        write_slot(&older);
        assert_eq!(load_meta(&dev, &sb).unwrap().unwrap().epoch, 4);
        write_slot(&newer);
        assert_eq!(load_meta(&dev, &sb).unwrap().unwrap().epoch, 5);
        // Corrupting the newer slot falls back to the older one.
        let newer_base = sb.meta_start + (newer.epoch % 2) * sb.meta_slot_blocks();
        dev.write_block(newer_base, &vec![0xFFu8; 512]).unwrap();
        assert_eq!(load_meta(&dev, &sb).unwrap().unwrap().epoch, 4);
    }
}

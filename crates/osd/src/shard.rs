//! Lock-striped sharding primitives for the OSD hot path.
//!
//! The paper's core concurrency argument (§2.3, §3.3) is that an object
//! store frees unrelated operations from synchronising on shared namespace
//! state. A single global lock in front of the object table would quietly
//! reintroduce exactly the bottleneck the paper removes, so the store
//! stripes its hot-path state — the open-object map and the object table —
//! across [`resolve_shard_count`] independent shards routed by a hash of
//! the [`ObjectId`](crate::oid::ObjectId). Operations on objects in
//! different shards never touch the same lock.
//!
//! [`ShardedMap`] is the generic lock-striped map used for the open-object
//! cache; the striped object-table B-trees live in
//! [`store`](crate::store) and reuse [`shard_index`] so that, for a given
//! object, the map shard and the table shard are always aligned.

use std::collections::HashMap;

use parking_lot::Mutex;

/// The workspace-wide shard-count resolution and key-routing convention.
///
/// The arithmetic lives in [`hfad_storage::shard`] (PR 5 moved it there so
/// the block cache, the decoded-node cache and the store all stripe the
/// same way); these re-exports keep the OSD's public surface unchanged.
pub use hfad_storage::shard::{resolve_shard_count, shard_index, MAX_SHARDS};

/// A lock-striped hash map keyed by `u64`.
///
/// The map is split into a power-of-two number of independent
/// `Mutex<HashMap>` shards; an operation locks only the shard its key
/// routes to, so operations on keys in different shards proceed in
/// parallel. With a shard count of 1 this degenerates to the classic
/// single global `Mutex<HashMap>` (the configuration the E2/E6 ablations
/// use as the contention baseline).
pub struct ShardedMap<V> {
    shards: Box<[Mutex<HashMap<u64, V>>]>,
}

impl<V> ShardedMap<V> {
    /// Creates a map striped over `shard_count` shards (a power of two, as
    /// produced by [`resolve_shard_count`]).
    pub fn new(shard_count: usize) -> Self {
        assert!(
            shard_count.is_power_of_two() && shard_count <= MAX_SHARDS,
            "shard count {shard_count} must be a power of two ≤ {MAX_SHARDS}"
        );
        let shards = (0..shard_count)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedMap { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_index(key, self.shards.len())
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, V>> {
        &self.shards[self.shard_of(key)]
    }

    /// Inserts `value` under `key`, returning the previous value, if any.
    pub fn insert(&self, key: u64, value: V) -> Option<V> {
        self.shard(key).lock().insert(key, value)
    }

    /// Removes and returns the value under `key`, if any.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.shard(key).lock().remove(&key)
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.shard(key).lock().contains_key(&key)
    }

    /// Total number of entries (sums per-shard sizes; a snapshot, not a
    /// consistent point-in-time count under concurrent mutation).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Locks and returns the shard `key` routes to, for callers that must
    /// perform a multi-step read-modify-write atomically with respect to
    /// every other operation on keys in the same shard (e.g. the store's
    /// delete path, which must keep the shard locked while it also updates
    /// the table so a concurrent open cannot resurrect the entry).
    pub fn lock_shard(&self, key: u64) -> parking_lot::MutexGuard<'_, HashMap<u64, V>> {
        self.shard(key).lock()
    }
}

impl<V: Clone> ShardedMap<V> {
    /// Returns a clone of the value under `key`, if any.
    pub fn get(&self, key: u64) -> Option<V> {
        self.shard(key).lock().get(&key).cloned()
    }

    /// Returns the value under `key`, inserting the result of `load` first
    /// if absent.
    ///
    /// The shard lock is held across `load`, so concurrent callers for the
    /// same key observe exactly one load — the invariant the open-object
    /// cache relies on to never materialise two handles for one object.
    /// Only the one shard is locked: loads for keys in other shards
    /// proceed concurrently (under a single global map lock they would
    /// serialise behind the load's I/O).
    pub fn get_or_try_insert_with<E>(
        &self,
        key: u64,
        load: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        let mut shard = self.shard(key).lock();
        if let Some(existing) = shard.get(&key) {
            return Ok(existing.clone());
        }
        let value = load()?;
        shard.insert(key, value.clone());
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_auto_is_power_of_two_and_covers_parallelism() {
        let n = resolve_shard_count(0);
        assert!(n.is_power_of_two());
        let parallelism = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert!(n >= parallelism.min(MAX_SHARDS));
    }

    #[test]
    fn resolve_rounds_up_and_clamps() {
        assert_eq!(resolve_shard_count(1), 1);
        assert_eq!(resolve_shard_count(3), 4);
        assert_eq!(resolve_shard_count(16), 16);
        assert_eq!(resolve_shard_count(usize::MAX), MAX_SHARDS);
    }

    #[test]
    fn routing_is_in_bounds_and_deterministic() {
        for count in [1usize, 2, 8, 64] {
            for key in 0..1000u64 {
                let idx = shard_index(key, count);
                assert!(idx < count);
                assert_eq!(idx, shard_index(key, count));
            }
        }
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        let count = 8;
        let mut hit = vec![0usize; count];
        for key in 0..1024u64 {
            hit[shard_index(key, count)] += 1;
        }
        // Fibonacci hashing must not leave any shard starved for a dense
        // sequential key range (the OID allocation pattern).
        for (i, &h) in hit.iter().enumerate() {
            assert!(h > 0, "shard {i} never hit");
        }
    }

    #[test]
    fn map_basic_operations() {
        let map: ShardedMap<String> = ShardedMap::new(4);
        assert!(map.is_empty());
        assert_eq!(map.insert(7, "seven".into()), None);
        assert_eq!(map.insert(7, "VII".into()), Some("seven".into()));
        assert_eq!(map.get(7), Some("VII".into()));
        assert!(map.contains(7));
        assert_eq!(map.len(), 1);
        assert_eq!(map.remove(7), Some("VII".into()));
        assert!(map.get(7).is_none());
        assert!(map.is_empty());
    }

    #[test]
    fn get_or_try_insert_loads_once() {
        let map: ShardedMap<u32> = ShardedMap::new(2);
        let loaded: u32 = map.get_or_try_insert_with(1, || Ok::<_, ()>(41)).unwrap();
        assert_eq!(loaded, 41);
        // Second call must return the cached value, not re-load.
        let cached: u32 = map
            .get_or_try_insert_with(1, || -> Result<u32, ()> { panic!("value already cached") })
            .unwrap();
        assert_eq!(cached, 41);
        // A failed load caches nothing.
        assert_eq!(map.get_or_try_insert_with(2, || Err("boom")), Err("boom"));
        assert!(!map.contains(2));
    }
}

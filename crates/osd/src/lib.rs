//! # hfad-osd
//!
//! The object-based storage device layer of the hFAD reproduction
//! ("Hierarchical File Systems Are Dead", Seltzer & Murphy, HotOS 2009,
//! §3.3–3.4).
//!
//! Objects are uniquely identified, fully byte-accessible containers:
//! besides POSIX-style `read`/`write`, they support `insert` (splice bytes
//! into the middle) and range `truncate` (remove bytes from anywhere).
//! Each object is a B-tree extent map — keys are logical offsets, values
//! are device extents — with the object metadata stored under a reserved
//! "NULL" key, exactly as the paper's §3.4 sketch describes.
//!
//! * [`store::ObjectStore`] — OID allocation, the sharded object table,
//!   per-object locking, create/delete and all data operations.
//! * [`shard`] — the lock-striping primitives behind the store's hot path
//!   ([`ShardedMap`], shard-count resolution and key routing).
//! * [`object::Object`] — the extent-map object itself.
//! * [`meta::ObjectMeta`] — security attributes, times and size.
//! * [`txn::TxnStore`] — the optional transactional wrapper (write-ahead
//!   logged commits over a circular journal), ablated in experiment E6.
//! * [`checkpoint::Checkpointer`] — watermark-driven background journal
//!   reclaim, so sustained write traffic never sees a stop-the-world
//!   checkpoint stall (experiment E11).
//! * [`persist`] — the crash-safe file-backed mode: doublewrite-protected
//!   checkpoints of retain-dirty cache pages, checksummed metadata
//!   ping-pong slots, floored journal replay on reopen, and single-writer
//!   / multi-reader multi-process arbitration.

pub mod checkpoint;
pub mod error;
pub mod meta;
pub mod object;
pub mod oid;
pub mod persist;
pub mod shard;
pub mod store;
pub mod txn;

pub use checkpoint::{CheckpointConfig, Checkpointer};
pub use error::{OsdError, Result};
pub use meta::{unix_now, ObjectMeta, Security};
pub use object::{Object, ObjectStats, DEFAULT_MAX_EXTENT_BYTES};
pub use oid::{ObjectId, OidAllocator, OID_RANGE};
pub use persist::{
    create_file, open_file, open_file_reader, StoreMeta, DEFAULT_PERSIST_JOURNAL_BLOCKS,
};
pub use shard::{resolve_shard_count, shard_index, ShardedMap, MAX_SHARDS};
pub use store::{AllocatorKind, ObjectStore, StoreConfig, StoreStats};
pub use txn::{
    CheckpointStats, Transaction, TxnOp, TxnStore, TxnStoreStats, STALL_BUCKETS,
    STALL_BUCKET_BOUNDS_NS,
};

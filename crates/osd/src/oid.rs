//! Object identifiers and their allocator.

use core::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::shard::{resolve_shard_count, shard_index};

/// A unique object identifier.
///
/// The paper requires only that "the identifier for the data in the OSD
/// layer must be unique"; identifiers are allocated sequentially by the
/// [`ObjectStore`](crate::store::ObjectStore) and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The raw 64-bit value.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }

    /// Order-preserving 8-byte encoding used as a B-tree key.
    pub fn to_key(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Decodes an identifier from [`to_key`](Self::to_key) output.
    pub fn from_key(key: &[u8]) -> Option<ObjectId> {
        let arr: [u8; 8] = key.try_into().ok()?;
        Some(ObjectId(u64::from_be_bytes(arr)))
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

/// Number of ids a shard claims from the global counter at a time.
///
/// Large enough that a busy creator thread touches the shared counter once
/// per 64 creates, small enough that an idle shard strands a negligible
/// id range (ids are 64-bit; stranding can never matter in practice).
pub const OID_RANGE: u64 = 64;

/// One shard's current id range.
struct OidRange {
    next: u64,
    limit: u64,
}

/// A sharded object-id allocator.
///
/// The seed design was a single `AtomicU64`: correct, but a cross-shard
/// hotspot — every concurrent create on the whole store bounced the same
/// cache line, the one piece of state the sharded object table still
/// shared. `OidAllocator` stripes allocation the same way the table is
/// striped: each shard holds a private range of ids and refills it from a
/// global range counter once per [`OID_RANGE`] allocations, so concurrent
/// creators on different shards share nothing on the common path.
///
/// Ids are unique and never reused; ids handed to one caller thread are
/// strictly increasing (a thread sticks to one shard, whose ranges grow
/// monotonically). Ids are *not* globally dense: an idle shard's
/// unconsumed range is simply never used.
pub struct OidAllocator {
    /// Start of the next unclaimed range.
    range_head: AtomicU64,
    shards: Box<[Mutex<OidRange>]>,
}

impl OidAllocator {
    /// Creates an allocator whose first issued id is `first`, striped over
    /// `shards` lock shards (`0` auto-sizes, values round up to a power of
    /// two — the same convention as every other striped structure).
    pub fn new(first: u64, shards: usize) -> Self {
        let shard_count = resolve_shard_count(shards);
        OidAllocator {
            range_head: AtomicU64::new(first),
            shards: (0..shard_count)
                .map(|_| Mutex::new(OidRange { next: 0, limit: 0 }))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Number of allocation shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Allocates the next id from the calling thread's shard.
    pub fn allocate(&self) -> ObjectId {
        // Route by thread identity: a given thread keeps drawing from one
        // shard (ids it sees are monotonic), different threads spread
        // across shards (no shared cache line on the common path).
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        self.allocate_from(shard_index(hasher.finish(), self.shards.len()))
    }

    /// Start of the next unclaimed range: every id this allocator has
    /// handed out — or may still hand out from a shard's already-claimed
    /// range — is strictly below it. A persistent checkpoint records it as
    /// the restart floor so no id is ever reissued after recovery.
    pub fn range_head(&self) -> u64 {
        self.range_head.load(Ordering::Relaxed)
    }

    /// Raises the range head to at least `floor` (never lowers it).
    ///
    /// Used by journal replay on open: a replayed create may carry an id
    /// from a range claimed after the last checkpoint, so the head is
    /// floored above it before the store issues new ids. Only sound while
    /// shard ranges are fresh (`next == limit == 0`), i.e. during open.
    pub fn ensure_floor(&self, floor: u64) {
        self.range_head.fetch_max(floor, Ordering::Relaxed);
    }

    /// Allocates the next id from an explicit shard (tests, benches).
    pub fn allocate_from(&self, shard: usize) -> ObjectId {
        let mut range = self.shards[shard % self.shards.len()].lock();
        if range.next >= range.limit {
            let start = self.range_head.fetch_add(OID_RANGE, Ordering::Relaxed);
            range.next = start;
            range.limit = start + OID_RANGE;
        }
        let id = range.next;
        range.next += 1;
        ObjectId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_ids_unique_and_thread_monotonic() {
        let alloc = std::sync::Arc::new(OidAllocator::new(1, 4));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let alloc = std::sync::Arc::clone(&alloc);
            handles.push(std::thread::spawn(move || {
                let ids: Vec<u64> = (0..200).map(|_| alloc.allocate().as_u64()).collect();
                // A single thread must observe strictly increasing ids.
                for w in ids.windows(2) {
                    assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
                }
                ids
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "ids must never collide");
        assert!(all.iter().all(|&id| id >= 1), "first id respected");
    }

    #[test]
    fn allocator_refills_ranges_per_shard() {
        let alloc = OidAllocator::new(1, 2);
        assert_eq!(alloc.shard_count(), 2);
        // Drain more than one range from shard 0: ids stay monotonic
        // within the shard even across a refill.
        let ids: Vec<u64> = (0..OID_RANGE * 2 + 5)
            .map(|_| alloc.allocate_from(0).as_u64())
            .collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
        // A second shard draws from a disjoint range.
        let other = alloc.allocate_from(1).as_u64();
        assert!(!ids.contains(&other));
    }

    #[test]
    fn single_shard_allocator_is_dense() {
        let alloc = OidAllocator::new(10, 1);
        let ids: Vec<u64> = (0..100).map(|_| alloc.allocate_from(0).as_u64()).collect();
        assert_eq!(ids, (10..110).collect::<Vec<u64>>());
    }

    #[test]
    fn key_round_trip_preserves_order() {
        let a = ObjectId(3);
        let b = ObjectId(300);
        assert!(a.to_key() < b.to_key());
        assert_eq!(ObjectId::from_key(&a.to_key()), Some(a));
        assert_eq!(ObjectId::from_key(&[1, 2]), None);
    }

    #[test]
    fn display_and_from() {
        let oid: ObjectId = 42u64.into();
        assert_eq!(oid.to_string(), "oid:42");
        assert_eq!(oid.as_u64(), 42);
    }
}

//! Object identifiers.

use core::fmt;

/// A unique object identifier.
///
/// The paper requires only that "the identifier for the data in the OSD
/// layer must be unique"; identifiers are allocated sequentially by the
/// [`ObjectStore`](crate::store::ObjectStore) and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The raw 64-bit value.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }

    /// Order-preserving 8-byte encoding used as a B-tree key.
    pub fn to_key(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Decodes an identifier from [`to_key`](Self::to_key) output.
    pub fn from_key(key: &[u8]) -> Option<ObjectId> {
        let arr: [u8; 8] = key.try_into().ok()?;
        Some(ObjectId(u64::from_be_bytes(arr)))
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trip_preserves_order() {
        let a = ObjectId(3);
        let b = ObjectId(300);
        assert!(a.to_key() < b.to_key());
        assert_eq!(ObjectId::from_key(&a.to_key()), Some(a));
        assert_eq!(ObjectId::from_key(&[1, 2]), None);
    }

    #[test]
    fn display_and_from() {
        let oid: ObjectId = 42u64.into();
        assert_eq!(oid.to_string(), "oid:42");
        assert_eq!(oid.as_u64(), 42);
    }
}

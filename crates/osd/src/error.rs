//! Error types for the OSD layer.

use core::fmt;

use hfad_btree::BTreeError;
use hfad_storage::StorageError;

/// Errors produced by the object storage device layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsdError {
    /// Error from the underlying device or allocator.
    Storage(StorageError),
    /// Error from an extent-map or object-table B-tree.
    BTree(BTreeError),
    /// The object id does not exist in the store.
    NoSuchObject(u64),
    /// A read/insert/truncate referenced a range outside the object.
    OutOfBounds {
        /// Object size in bytes.
        size: u64,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
    },
    /// A transaction was used after being committed or aborted.
    TransactionClosed,
    /// An on-disk structure failed validation.
    Corrupt(String),
    /// The store is intact but holds unrecovered state (a staged
    /// doublewrite batch or unreplayed journal commits) that only a
    /// writer open may apply. Readers surface this instead of
    /// [`Corrupt`](Self::Corrupt) so callers can distinguish "open a
    /// writer first" from actual damage.
    NeedsRecovery(String),
}

impl OsdError {
    /// Whether the failure is a transient device fault worth retrying
    /// (see [`StorageError::is_transient`]). Every OSD-level error —
    /// missing objects, closed transactions, corruption — is
    /// deterministic and permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, OsdError::Storage(e) if e.is_transient())
    }
}

impl fmt::Display for OsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsdError::Storage(e) => write!(f, "storage error: {e}"),
            OsdError::BTree(e) => write!(f, "b-tree error: {e}"),
            OsdError::NoSuchObject(oid) => write!(f, "no such object: {oid}"),
            OsdError::OutOfBounds { size, offset, len } => write!(
                f,
                "range [{offset}, +{len}) out of bounds for object of {size} bytes"
            ),
            OsdError::TransactionClosed => write!(f, "transaction already committed or aborted"),
            OsdError::Corrupt(msg) => write!(f, "corrupt OSD structure: {msg}"),
            OsdError::NeedsRecovery(msg) => write!(f, "store requires recovery: {msg}"),
        }
    }
}

impl std::error::Error for OsdError {}

impl From<StorageError> for OsdError {
    fn from(e: StorageError) -> Self {
        OsdError::Storage(e)
    }
}

impl From<BTreeError> for OsdError {
    fn from(e: BTreeError) -> Self {
        OsdError::BTree(e)
    }
}

/// Convenience alias used throughout the OSD crate.
pub type Result<T> = std::result::Result<T, OsdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OsdError::NoSuchObject(7).to_string().contains('7'));
        let e = OsdError::OutOfBounds {
            size: 10,
            offset: 20,
            len: 5,
        };
        assert!(e.to_string().contains("[20, +5)"));
        assert!(OsdError::TransactionClosed
            .to_string()
            .contains("committed"));
        let e = OsdError::NeedsRecovery("unreplayed journal commits".into());
        assert!(e.to_string().contains("requires recovery"));
        assert!(
            !matches!(e, OsdError::Corrupt(_)),
            "recoverable state must be distinguishable from corruption"
        );
    }

    #[test]
    fn conversions() {
        let e: OsdError = StorageError::ZeroAllocation.into();
        assert!(matches!(e, OsdError::Storage(_)));
        let e: OsdError = BTreeError::EmptyKey.into();
        assert!(matches!(e, OsdError::BTree(_)));
    }
}

//! Per-object metadata.
//!
//! The paper (§3.3): "Each such container (object) has associated meta-data
//! identifying the object's security attributes, its last access and
//! modified times, and its size." Metadata is stored in the object's own
//! extent-map B-tree under a reserved key — the Berkeley DB "NULL key"
//! trick described in §3.4.

use crate::error::{OsdError, Result};

/// Security attributes of an object (a minimal POSIX-like model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Security {
    /// Owning user id.
    pub uid: u32,
    /// Owning group id.
    pub gid: u32,
    /// Permission bits (the low 12 bits of a POSIX mode).
    pub mode: u16,
}

/// Metadata attached to every object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObjectMeta {
    /// Logical size in bytes.
    pub size: u64,
    /// Creation time (seconds since the Unix epoch).
    pub created: u64,
    /// Last modification time (seconds since the Unix epoch).
    pub modified: u64,
    /// Last access time (seconds since the Unix epoch).
    pub accessed: u64,
    /// Security attributes.
    pub security: Security,
    /// Free-form application flags (the OSD does not interpret these).
    pub flags: u32,
}

impl ObjectMeta {
    /// Encoded length in bytes.
    pub const ENCODED_LEN: usize = 8 * 4 + 4 + 4 + 2 + 4 + 2;

    /// Creates metadata for a new, empty object owned by `uid`/`gid`.
    pub fn new(uid: u32, gid: u32, mode: u16, now: u64) -> Self {
        ObjectMeta {
            size: 0,
            created: now,
            modified: now,
            accessed: now,
            security: Security { uid, gid, mode },
            flags: 0,
        }
    }

    /// Serialises the metadata.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.created.to_le_bytes());
        out.extend_from_slice(&self.modified.to_le_bytes());
        out.extend_from_slice(&self.accessed.to_le_bytes());
        out.extend_from_slice(&self.security.uid.to_le_bytes());
        out.extend_from_slice(&self.security.gid.to_le_bytes());
        out.extend_from_slice(&self.security.mode.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]); // Reserved.
        out
    }

    /// Deserialises metadata written by [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < Self::ENCODED_LEN {
            return Err(OsdError::Corrupt(format!(
                "metadata record of {} bytes is too short",
                buf.len()
            )));
        }
        let u64_at = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("u64"));
        let u32_at = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("u32"));
        let u16_at = |i: usize| u16::from_le_bytes(buf[i..i + 2].try_into().expect("u16"));
        Ok(ObjectMeta {
            size: u64_at(0),
            created: u64_at(8),
            modified: u64_at(16),
            accessed: u64_at(24),
            security: Security {
                uid: u32_at(32),
                gid: u32_at(36),
                mode: u16_at(40),
            },
            flags: u32_at(42),
        })
    }
}

/// A coarse wall-clock reading in seconds, used to stamp metadata.
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let meta = ObjectMeta {
            size: 12345,
            created: 1_700_000_000,
            modified: 1_700_000_100,
            accessed: 1_700_000_200,
            security: Security {
                uid: 1000,
                gid: 100,
                mode: 0o644,
            },
            flags: 0xDEAD,
        };
        let decoded = ObjectMeta::decode(&meta.encode()).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn new_starts_empty_with_equal_times() {
        let m = ObjectMeta::new(1, 2, 0o600, 999);
        assert_eq!(m.size, 0);
        assert_eq!(m.created, 999);
        assert_eq!(m.modified, 999);
        assert_eq!(m.accessed, 999);
        assert_eq!(m.security.uid, 1);
        assert_eq!(m.security.mode, 0o600);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(ObjectMeta::decode(&[0u8; 10]).is_err());
    }

    #[test]
    fn unix_now_is_plausible() {
        // After 2020 and before 2100.
        let now = unix_now();
        assert!(now > 1_577_836_800);
        assert!(now < 4_102_444_800);
    }
}

//! The object store: OID allocation, the object table and per-object locks.
//!
//! This is the paper's OSD layer (§3.3): it presents "the abstraction of a
//! uniquely identified container of bytes". It is comparable to the ZFS DMU
//! except that, as in the paper, it provides individual objects rather than
//! object sets, and transactionality is optional (see [`crate::txn`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use hfad_btree::{BTree, TreeContext};
use hfad_storage::{
    AllocStats, Allocator, BlockDevice, BuddyAllocator, BumpAllocator, DeviceCounters, Superblock,
};

use crate::error::{OsdError, Result};
use crate::meta::{unix_now, ObjectMeta};
use crate::object::{Object, DEFAULT_MAX_EXTENT_BYTES};
use crate::oid::ObjectId;

/// Which allocator manages the data area (ablated in experiment E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorKind {
    /// The paper's buddy allocator.
    #[default]
    Buddy,
    /// A never-reclaiming bump allocator (ablation baseline).
    Bump,
}

/// Configuration for a new [`ObjectStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Maximum bytes covered by a single extent.
    pub max_extent_bytes: u64,
    /// Blocks reserved for the write-ahead journal (0 disables it).
    pub journal_blocks: u64,
    /// Allocator for the data area.
    pub allocator: AllocatorKind,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_extent_bytes: DEFAULT_MAX_EXTENT_BYTES,
            journal_blocks: 0,
            allocator: AllocatorKind::Buddy,
        }
    }
}

/// Aggregate statistics for a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of live objects.
    pub objects: u64,
    /// Physical device counters.
    pub device: DeviceCounters,
    /// Data-area allocator statistics.
    pub allocator: AllocStats,
}

struct OpenObject {
    object: Object,
    persisted_root: u64,
}

/// The object storage device.
///
/// All methods take `&self`; concurrency control is one lock per object
/// plus a reader/writer lock on the object table. This is the locking
/// granularity the paper contrasts with a hierarchical namespace, where
/// unrelated operations still synchronise on shared ancestor directories.
pub struct ObjectStore {
    ctx: TreeContext,
    superblock: Superblock,
    config: StoreConfig,
    table: RwLock<BTree>,
    objects: Mutex<HashMap<u64, Arc<Mutex<OpenObject>>>>,
    next_oid: AtomicU64,
}

impl ObjectStore {
    /// Formats `device` and creates an empty store on it.
    pub fn create(device: Arc<dyn BlockDevice>, config: StoreConfig) -> Result<Self> {
        let superblock = Superblock::layout(
            device.block_count(),
            device.block_size(),
            config.journal_blocks,
        )?;
        superblock.write_to(&device)?;
        let allocator: Arc<dyn Allocator> = match config.allocator {
            AllocatorKind::Buddy => Arc::new(BuddyAllocator::new(
                superblock.data_start,
                superblock.data_blocks,
            )),
            AllocatorKind::Bump => Arc::new(BumpAllocator::new(
                superblock.data_start,
                superblock.data_blocks,
            )),
        };
        let ctx = TreeContext::new(device, allocator);
        let table = BTree::create(ctx.clone())?;
        Ok(ObjectStore {
            ctx,
            superblock,
            config,
            table: RwLock::new(table),
            objects: Mutex::new(HashMap::new()),
            next_oid: AtomicU64::new(1),
        })
    }

    /// Convenience constructor: an in-memory store with `capacity_bytes` of
    /// backing storage and default configuration.
    pub fn in_memory(capacity_bytes: u64) -> Result<Self> {
        let device = Arc::new(hfad_storage::MemDevice::with_capacity(capacity_bytes));
        Self::create(device, StoreConfig::default())
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The device layout this store formatted.
    pub fn superblock(&self) -> Superblock {
        self.superblock
    }

    /// The shared device / allocator context.
    pub fn context(&self) -> &TreeContext {
        &self.ctx
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            objects: self.object_count(),
            device: self.ctx.device.counters(),
            allocator: self.ctx.allocator.stats(),
        }
    }

    /// Number of live objects.
    pub fn object_count(&self) -> u64 {
        self.table
            .read()
            .scan_all()
            .map(|v| v.len() as u64)
            .unwrap_or(0)
    }

    /// Every live object id, in ascending order.
    pub fn list(&self) -> Result<Vec<ObjectId>> {
        let table = self.table.read();
        let mut out = Vec::new();
        for (key, _) in table.scan_all()? {
            if let Some(oid) = ObjectId::from_key(&key) {
                out.push(oid);
            }
        }
        Ok(out)
    }

    /// Creates a new empty object and returns its id.
    pub fn create_object(&self, meta: ObjectMeta) -> Result<ObjectId> {
        let oid = ObjectId(self.next_oid.fetch_add(1, Ordering::Relaxed));
        let object = Object::create(oid, self.ctx.clone(), meta, self.config.max_extent_bytes)?;
        let root = object.root_page();
        {
            let mut table = self.table.write();
            table.insert(&oid.to_key(), &root.to_le_bytes())?;
        }
        self.objects.lock().insert(
            oid.as_u64(),
            Arc::new(Mutex::new(OpenObject {
                object,
                persisted_root: root,
            })),
        );
        Ok(oid)
    }

    /// Creates an object with default metadata owned by `uid`.
    pub fn create_default(&self, uid: u32) -> Result<ObjectId> {
        self.create_object(ObjectMeta::new(uid, uid, 0o644, unix_now()))
    }

    fn load_object(&self, oid: ObjectId) -> Result<Arc<Mutex<OpenObject>>> {
        let mut map = self.objects.lock();
        if let Some(entry) = map.get(&oid.as_u64()) {
            return Ok(Arc::clone(entry));
        }
        // Not open: fetch the root page from the table and reconstruct.
        let root_bytes = {
            let table = self.table.read();
            table.get(&oid.to_key())?
        };
        let Some(root_bytes) = root_bytes else {
            return Err(OsdError::NoSuchObject(oid.as_u64()));
        };
        let root = u64::from_le_bytes(
            root_bytes
                .as_slice()
                .try_into()
                .map_err(|_| OsdError::Corrupt("object table value is not a root page".into()))?,
        );
        let tree = BTree::open(self.ctx.clone(), root);
        let meta_bytes = tree
            .get(&[0x00])?
            .ok_or_else(|| OsdError::Corrupt(format!("object {oid} has no metadata record")))?;
        let meta = ObjectMeta::decode(&meta_bytes)?;
        let object = Object::from_parts(oid, tree, meta, self.config.max_extent_bytes);
        let entry = Arc::new(Mutex::new(OpenObject {
            object,
            persisted_root: root,
        }));
        map.insert(oid.as_u64(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Runs `f` with exclusive access to the object, persisting the new
    /// extent-map root if the operation changed it.
    pub fn with_object<R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&mut Object) -> Result<R>,
    ) -> Result<R> {
        let entry = self.load_object(oid)?;
        let mut guard = entry.lock();
        let result = f(&mut guard.object)?;
        let root = guard.object.root_page();
        if root != guard.persisted_root {
            let mut table = self.table.write();
            table.insert(&oid.to_key(), &root.to_le_bytes())?;
            guard.persisted_root = root;
        }
        Ok(result)
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read(&self, oid: ObjectId, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.with_object(oid, |o| o.read(offset, len))
    }

    /// Writes `data` at `offset`, extending the object if needed.
    pub fn write(&self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.with_object(oid, |o| o.write(offset, data))
    }

    /// Appends `data` at the end of the object.
    pub fn append(&self, oid: ObjectId, data: &[u8]) -> Result<()> {
        self.with_object(oid, |o| o.append(data))
    }

    /// Inserts `data` at `offset`, shifting the tail of the object.
    pub fn insert(&self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.with_object(oid, |o| o.insert(offset, data))
    }

    /// Removes `len` bytes at `offset`, shifting the tail towards the start.
    pub fn truncate_range(&self, oid: ObjectId, offset: u64, len: u64) -> Result<()> {
        self.with_object(oid, |o| o.truncate_range(offset, len))
    }

    /// POSIX-style truncate to an absolute size.
    pub fn truncate(&self, oid: ObjectId, new_size: u64) -> Result<()> {
        self.with_object(oid, |o| o.truncate(new_size))
    }

    /// Current object size in bytes.
    pub fn len(&self, oid: ObjectId) -> Result<u64> {
        self.with_object(oid, |o| Ok(o.len()))
    }

    /// Returns `true` when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.object_count() == 0
    }

    /// Current object metadata.
    pub fn meta(&self, oid: ObjectId) -> Result<ObjectMeta> {
        self.with_object(oid, |o| Ok(o.meta()))
    }

    /// Updates security attributes / flags.
    pub fn set_meta(&self, oid: ObjectId, meta: ObjectMeta) -> Result<()> {
        self.with_object(oid, |o| o.set_meta(meta))
    }

    /// Per-object statistics (size, extent count, allocated blocks).
    pub fn object_stats(&self, oid: ObjectId) -> Result<crate::object::ObjectStats> {
        self.with_object(oid, |o| o.stats())
    }

    /// Deletes an object, freeing all of its storage.
    pub fn delete(&self, oid: ObjectId) -> Result<()> {
        let entry = self.load_object(oid)?;
        // Take the object out of the open table first so concurrent callers
        // fail with NoSuchObject rather than racing the destroy.
        self.objects.lock().remove(&oid.as_u64());
        {
            let mut table = self.table.write();
            table.delete(&oid.to_key())?;
        }
        let open = Arc::try_unwrap(entry)
            .map_err(|_| OsdError::Corrupt(format!("object {oid} still in use during delete")))?
            .into_inner();
        open.object.destroy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ObjectStore {
        ObjectStore::in_memory(32 * 1024 * 1024).unwrap()
    }

    #[test]
    fn create_and_list_objects() {
        let s = store();
        assert!(s.is_empty());
        let a = s.create_default(1000).unwrap();
        let b = s.create_default(1000).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.list().unwrap(), vec![a, b]);
    }

    #[test]
    fn write_read_via_store() {
        let s = store();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, b"stored bytes").unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"stored bytes".to_vec());
        assert_eq!(s.len(oid).unwrap(), 12);
        assert_eq!(s.meta(oid).unwrap().size, 12);
    }

    #[test]
    fn missing_object_reported() {
        let s = store();
        let err = s.read(ObjectId(999), 0, 10).unwrap_err();
        assert!(matches!(err, OsdError::NoSuchObject(999)));
    }

    #[test]
    fn insert_and_truncate_via_store() {
        let s = store();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, b"hello world").unwrap();
        s.insert(oid, 5, b",").unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"hello, world".to_vec());
        s.truncate_range(oid, 5, 1).unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"hello world".to_vec());
        s.truncate(oid, 5).unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"hello".to_vec());
    }

    #[test]
    fn delete_frees_space_and_forgets_object() {
        let s = store();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, &vec![1u8; 100_000]).unwrap();
        let allocated = s.stats().allocator.allocated_blocks;
        s.delete(oid).unwrap();
        assert!(s.stats().allocator.allocated_blocks < allocated);
        assert!(matches!(s.read(oid, 0, 1), Err(OsdError::NoSuchObject(_))));
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn object_ids_are_never_reused() {
        let s = store();
        let a = s.create_default(0).unwrap();
        s.delete(a).unwrap();
        let b = s.create_default(0).unwrap();
        assert!(b.as_u64() > a.as_u64());
    }

    #[test]
    fn many_objects_roundtrip() {
        let s = store();
        let mut oids = Vec::new();
        for i in 0..100u32 {
            let oid = s.create_default(0).unwrap();
            s.write(oid, 0, format!("object number {i}").as_bytes())
                .unwrap();
            oids.push(oid);
        }
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(
                s.read(*oid, 0, 100).unwrap(),
                format!("object number {i}").into_bytes()
            );
        }
        assert_eq!(s.object_count(), 100);
    }

    #[test]
    fn reload_after_cache_eviction_equivalent() {
        // Deleting the in-memory handle (by clearing the map through drop of
        // all other references) is not exposed; instead verify that an
        // object written through one handle reads correctly after another
        // object churned the table enough to split it.
        let s = store();
        let first = s.create_default(0).unwrap();
        s.write(first, 0, b"persistent").unwrap();
        for _ in 0..500 {
            s.create_default(0).unwrap();
        }
        assert_eq!(s.read(first, 0, 100).unwrap(), b"persistent".to_vec());
    }

    #[test]
    fn bump_allocator_store_works() {
        let device = Arc::new(hfad_storage::MemDevice::with_capacity(8 * 1024 * 1024));
        let s = ObjectStore::create(
            device,
            StoreConfig {
                allocator: AllocatorKind::Bump,
                ..Default::default()
            },
        )
        .unwrap();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, b"bump-backed").unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"bump-backed".to_vec());
        assert_eq!(s.stats().allocator.free_blocks > 0, true);
    }

    #[test]
    fn concurrent_access_to_distinct_objects() {
        let s = Arc::new(store());
        let oids: Vec<ObjectId> = (0..8).map(|_| s.create_default(0).unwrap()).collect();
        let mut handles = Vec::new();
        for (t, oid) in oids.iter().enumerate() {
            let s = Arc::clone(&s);
            let oid = *oid;
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let data = vec![t as u8; 64];
                    s.write(oid, i * 64, &data).unwrap();
                }
                s.len(oid).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 50 * 64);
        }
    }

    #[test]
    fn concurrent_creates_get_unique_ids() {
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..25)
                    .map(|_| s.create_default(0).unwrap().as_u64())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
        assert_eq!(s.object_count(), 200);
    }
}

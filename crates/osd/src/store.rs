//! The object store: OID allocation, the sharded object table and
//! per-object locks.
//!
//! This is the paper's OSD layer (§3.3): it presents "the abstraction of a
//! uniquely identified container of bytes". It is comparable to the ZFS DMU
//! except that, as in the paper, it provides individual objects rather than
//! object sets, and transactionality is optional (see [`crate::txn`]).
//!
//! # Sharding and locking model
//!
//! The paper's concurrency claim (§2.3) is that unrelated operations on an
//! object store share no namespace state and therefore no locks. The store
//! realises that claim by striping its two pieces of shared hot-path state
//! across `N` shards routed by a hash of the [`ObjectId`]
//! (see [`crate::shard`]):
//!
//! * **Object table** — `N` independent B-trees, each behind its own
//!   `RwLock`, mapping `OID → extent-map root page`. Create, remove and
//!   root-pointer updates for objects in different shards never contend.
//! * **Open-object map** — a [`ShardedMap`] of `OID → Arc<Mutex<Object>>`
//!   handles. Opening an object locks only its shard, and a cache-miss
//!   load (a table read plus object reconstruction) blocks only same-shard
//!   opens, not the whole store.
//! * **Per-object lock** — each open object is guarded by its own `Mutex`;
//!   all data operations (`read`/`write`/`insert`/`truncate`) take only
//!   that lock plus, when the extent-map root moved, the object's table
//!   shard.
//!
//! `N` defaults to the next power of two at or above the machine's
//! available parallelism and is overridable via [`StoreConfig::shards`];
//! `shards = 1` reproduces the old single-global-lock behaviour and is the
//! contention baseline measured by the E2/E6 experiments. OID allocation
//! is striped the same way ([`OidAllocator`]: per-shard id ranges refilled
//! from a global counter) and the block allocator and device have their
//! own internal synchronisation, so no global lock — and no shared cache
//! line — remains on the open/create/remove path.
//!
//! # The two cache tiers
//!
//! The read path can additionally be fronted by two caches, both off by
//! default and swept by experiment E9:
//!
//! * [`StoreConfig::cache_blocks`] wraps the device in the storage
//!   layer's sharded [`CachedDevice`] (block frames,
//!   [`StoreConfig::cache_shards`] lock stripes, O(1) CLOCK eviction).
//! * [`StoreConfig::node_cache_pages`] attaches a shared decoded-node
//!   cache to the B-tree context, so hot descents of the object table and
//!   extent maps skip `Node::decode` entirely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use hfad_btree::{BTree, TreeContext};
use hfad_storage::{
    AllocStats, Allocator, BlockDevice, BuddyAllocator, BumpAllocator, CacheStats, CachedDevice,
    DeviceCounters, ProcLock, Superblock,
};

use crate::error::{OsdError, Result};
use crate::meta::{unix_now, ObjectMeta};
use crate::object::{Object, DEFAULT_MAX_EXTENT_BYTES};
use crate::oid::{ObjectId, OidAllocator};
use crate::shard::{resolve_shard_count, shard_index, ShardedMap};

/// Which allocator manages the data area (ablated in experiment E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorKind {
    /// The paper's buddy allocator: power-of-two block runs with splitting
    /// and coalescing, so freed extents are reclaimed and refused
    /// allocations are rare until the device is genuinely full.
    #[default]
    Buddy,
    /// A never-reclaiming bump allocator (ablation baseline): allocation is
    /// a pointer increment, `free` is a no-op, so deleted objects leak
    /// their blocks.
    Bump,
}

/// Configuration for a new [`ObjectStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Maximum bytes covered by a single extent. Larger extents mean fewer
    /// extent-map entries per object but coarser mid-file splices; the
    /// trade-off is swept by experiment E6.
    pub max_extent_bytes: u64,
    /// Blocks reserved for the write-ahead journal (0 disables it; a
    /// journal is required by [`crate::txn::TxnStore`]).
    pub journal_blocks: u64,
    /// Allocator for the data area.
    pub allocator: AllocatorKind,
    /// Number of lock shards for the object table and open-object map.
    ///
    /// `0` (the default) auto-sizes to the next power of two at or above
    /// the machine's available parallelism; explicit values are rounded up
    /// to a power of two and capped at [`crate::shard::MAX_SHARDS`]. Set
    /// to `1` to reproduce a single-global-lock store (the E2/E6
    /// contention baseline).
    pub shards: usize,
    /// Block-cache capacity in blocks. `0` (the default) leaves the
    /// device unwrapped; any other value fronts it with the storage
    /// layer's sharded write-back [`CachedDevice`].
    pub cache_blocks: usize,
    /// Lock shards for the block cache (`0` auto-sizes; `1` reproduces
    /// the single-global-lock cache, the E9 contention baseline). Only
    /// meaningful when `cache_blocks > 0`.
    pub cache_shards: usize,
    /// Decoded B-tree node cache capacity in pages, shared by the object
    /// table stripes and every extent map. `0` (the default) decodes on
    /// every read — the E9 ablation baseline.
    pub node_cache_pages: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_extent_bytes: DEFAULT_MAX_EXTENT_BYTES,
            journal_blocks: 0,
            allocator: AllocatorKind::Buddy,
            shards: 0,
            cache_blocks: 0,
            cache_shards: 0,
            node_cache_pages: 0,
        }
    }
}

/// Aggregate statistics for a store, summed across all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of live objects (sum of the per-shard live counts).
    pub objects: u64,
    /// Number of lock shards the store was created with.
    pub shards: usize,
    /// Physical device counters.
    pub device: DeviceCounters,
    /// Data-area allocator statistics.
    pub allocator: AllocStats,
    /// Block-cache statistics; `None` when the store was created with
    /// [`StoreConfig::cache_blocks`] `== 0`.
    pub block_cache: Option<CacheStats>,
}

struct OpenObject {
    object: Object,
    persisted_root: u64,
}

/// One stripe of the object table: an independent `OID → root page`
/// B-tree plus the live-object count for the stripe.
struct TableShard {
    tree: RwLock<BTree>,
    live: AtomicU64,
}

/// The object storage device.
///
/// All methods take `&self`; see the [module documentation](self) for the
/// sharding and locking model. This is the locking granularity the paper
/// contrasts with a hierarchical namespace, where unrelated operations
/// still synchronise on shared ancestor directories.
pub struct ObjectStore {
    ctx: TreeContext,
    superblock: Superblock,
    config: StoreConfig,
    tables: Box<[TableShard]>,
    objects: ShardedMap<Arc<Mutex<OpenObject>>>,
    oid_alloc: OidAllocator,
    /// Typed handle to the block cache fronting the device, when
    /// configured ([`TreeContext::device`] is the same object, type-erased).
    block_cache: Option<Arc<CachedDevice<Arc<dyn BlockDevice>>>>,
    /// Persistence context for a file-backed writer store (`None` for
    /// in-memory and read-only stores). See [`crate::persist`].
    persist: Option<Arc<crate::persist::PersistCtx>>,
    /// Store-lifetime shared multi-process lock held by a read-only
    /// file-backed open (writers keep theirs inside [`PersistCtx`]).
    _proc_lock: Option<ProcLock>,
}

impl ObjectStore {
    /// Formats `device` and creates an empty store on it.
    ///
    /// With [`StoreConfig::cache_blocks`] `> 0` the device is fronted by
    /// the sharded write-back block cache before formatting, so every
    /// layer above (superblock, journal, B-trees, data extents) reads and
    /// writes through it.
    pub fn create(device: Arc<dyn BlockDevice>, config: StoreConfig) -> Result<Self> {
        let mut block_cache = None;
        let device: Arc<dyn BlockDevice> = if config.cache_blocks > 0 {
            let cached = Arc::new(CachedDevice::with_shards(
                device,
                config.cache_blocks,
                config.cache_shards,
            ));
            block_cache = Some(Arc::clone(&cached));
            cached
        } else {
            device
        };
        let superblock = Superblock::layout(
            device.block_count(),
            device.block_size(),
            config.journal_blocks,
        )?;
        superblock.write_to(&device)?;
        if superblock.journal_blocks > 0 {
            // Formatting must leave an *empty* journal: the device may be
            // reused, and `Journal::new` adopts any surviving valid
            // header + frames (so a later `TxnStore` would resurrect and
            // replay the previous instance's transactions). The full
            // zeroing reset destroys the old headers and every stale
            // frame in the region — the O(region) cost is fine at format
            // time, which is exactly why `reset_full` survives the
            // incremental-reclaim refactor.
            hfad_storage::Journal::new(
                Arc::clone(&device),
                superblock.journal_start,
                superblock.journal_blocks,
            )?
            .reset_full()?;
        }
        let allocator: Arc<dyn Allocator> = match config.allocator {
            AllocatorKind::Buddy => Arc::new(BuddyAllocator::new(
                superblock.data_start,
                superblock.data_blocks,
            )),
            AllocatorKind::Bump => Arc::new(BumpAllocator::new(
                superblock.data_start,
                superblock.data_blocks,
            )),
        };
        let ctx = TreeContext::new(device, allocator).with_node_cache(config.node_cache_pages);
        let shard_count = resolve_shard_count(config.shards);
        let mut tables = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            tables.push(TableShard {
                tree: RwLock::new(BTree::create(ctx.clone())?),
                live: AtomicU64::new(0),
            });
        }
        Ok(ObjectStore {
            ctx,
            superblock,
            config,
            tables: tables.into_boxed_slice(),
            objects: ShardedMap::new(shard_count),
            oid_alloc: OidAllocator::new(1, shard_count),
            block_cache,
            persist: None,
            _proc_lock: None,
        })
    }

    /// Assembles a store over an already-formatted persistent device.
    ///
    /// Unlike [`create`](Self::create) this never writes the superblock or
    /// journal — the persistent open/create flows in [`crate::persist`] do
    /// that on the raw device, beneath the retain-dirty `cache` this store
    /// reads and writes through. With `shard_state = Some(roots)` the
    /// object-table shards are reopened from checkpointed
    /// `(root_page, live_count)` pairs (which also fix the shard count);
    /// with `None` fresh empty shards are created per `config.shards`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_persistent(
        cache: Arc<CachedDevice<Arc<dyn BlockDevice>>>,
        allocator: Arc<dyn Allocator>,
        superblock: Superblock,
        config: StoreConfig,
        shard_state: Option<&[(u64, u64)]>,
        next_oid: u64,
        persist: Option<Arc<crate::persist::PersistCtx>>,
        proc_lock: Option<ProcLock>,
    ) -> Result<Self> {
        let block_cache = Some(Arc::clone(&cache));
        let device: Arc<dyn BlockDevice> = cache;
        let ctx = TreeContext::new(device, allocator).with_node_cache(config.node_cache_pages);
        let mut tables = Vec::new();
        match shard_state {
            Some(state) => {
                for &(root, live) in state {
                    tables.push(TableShard {
                        tree: RwLock::new(BTree::open(ctx.clone(), root)),
                        live: AtomicU64::new(live),
                    });
                }
            }
            None => {
                for _ in 0..resolve_shard_count(config.shards) {
                    tables.push(TableShard {
                        tree: RwLock::new(BTree::create(ctx.clone())?),
                        live: AtomicU64::new(0),
                    });
                }
            }
        }
        let shard_count = tables.len();
        if !shard_count.is_power_of_two() {
            return Err(OsdError::Corrupt(format!(
                "persistent store metadata carries {shard_count} table shards (not a power of two)"
            )));
        }
        Ok(ObjectStore {
            ctx,
            superblock,
            config,
            tables: tables.into_boxed_slice(),
            objects: ShardedMap::new(shard_count),
            oid_alloc: OidAllocator::new(next_oid.max(1), shard_count),
            block_cache,
            persist,
            _proc_lock: proc_lock,
        })
    }

    /// The persistence context, when this is a file-backed writer store.
    pub(crate) fn persist(&self) -> Option<&Arc<crate::persist::PersistCtx>> {
        self.persist.as_ref()
    }

    /// Returns `true` when this store persists to a file (writer mode).
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// Checkpointable object-table state: one `(root_page, live_count)`
    /// pair per shard, in shard order.
    pub(crate) fn table_state(&self) -> Vec<(u64, u64)> {
        self.tables
            .iter()
            .map(|s| (s.tree.read().root_page(), s.live.load(Ordering::Relaxed)))
            .collect()
    }

    /// The object-id allocator (checkpoints record its range head).
    pub(crate) fn oid_alloc(&self) -> &OidAllocator {
        &self.oid_alloc
    }

    /// Allocates an object id without creating the object — used by
    /// transactional creates, which journal the id before applying.
    pub(crate) fn allocate_oid(&self) -> ObjectId {
        self.oid_alloc.allocate()
    }

    /// Creates an empty object under a caller-chosen id.
    ///
    /// This is the replay/transactional twin of
    /// [`create_object`](Self::create_object): the id was allocated (and
    /// journalled) beforehand, so applying the same record twice must be
    /// harmless — an id that already exists returns `Ok` without touching
    /// anything.
    pub(crate) fn create_object_with_id(&self, oid: ObjectId, meta: ObjectMeta) -> Result<()> {
        let shard = self.table(oid);
        let mut map_shard = self.objects.lock_shard(oid.as_u64());
        {
            let tree = shard.tree.read();
            if tree.get(&oid.to_key())?.is_some() {
                return Ok(());
            }
        }
        let object = Object::create(oid, self.ctx.clone(), meta, self.config.max_extent_bytes)?;
        let root = object.root_page();
        {
            let mut tree = shard.tree.write();
            tree.insert(&oid.to_key(), &root.to_le_bytes())?;
        }
        shard.live.fetch_add(1, Ordering::Relaxed);
        map_shard.insert(
            oid.as_u64(),
            Arc::new(Mutex::new(OpenObject {
                object,
                persisted_root: root,
            })),
        );
        Ok(())
    }

    /// Convenience constructor: an in-memory store with `capacity_bytes` of
    /// backing storage and default configuration.
    pub fn in_memory(capacity_bytes: u64) -> Result<Self> {
        let device = Arc::new(hfad_storage::MemDevice::with_capacity(capacity_bytes));
        Self::create(device, StoreConfig::default())
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The device layout this store formatted.
    pub fn superblock(&self) -> Superblock {
        self.superblock
    }

    /// The shared device / allocator context.
    pub fn context(&self) -> &TreeContext {
        &self.ctx
    }

    /// Number of lock shards (the resolved value of
    /// [`StoreConfig::shards`]; always a power of two).
    pub fn shard_count(&self) -> usize {
        self.tables.len()
    }

    /// The shard `oid` routes to, in `0..shard_count()`. Two objects in
    /// the same shard share a table lock and an open-map stripe; objects
    /// in different shards share no namespace locks at all.
    pub fn shard_of(&self, oid: ObjectId) -> usize {
        shard_index(oid.as_u64(), self.tables.len())
    }

    fn table(&self, oid: ObjectId) -> &TableShard {
        &self.tables[self.shard_of(oid)]
    }

    /// The block cache fronting the device, when configured.
    pub fn block_cache(&self) -> Option<&Arc<CachedDevice<Arc<dyn BlockDevice>>>> {
        self.block_cache.as_ref()
    }

    /// Aggregate statistics, summed across shards.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            objects: self.object_count(),
            shards: self.tables.len(),
            device: self.ctx.device.counters(),
            allocator: self.ctx.allocator.stats(),
            block_cache: self.block_cache.as_ref().map(|c| c.cache_stats()),
        }
    }

    /// Number of live objects (sum of the per-shard live counts; O(shards),
    /// no table scan).
    pub fn object_count(&self) -> u64 {
        self.tables
            .iter()
            .map(|s| s.live.load(Ordering::Relaxed))
            .sum()
    }

    /// Every live object id, in ascending order (merged across shards).
    pub fn list(&self) -> Result<Vec<ObjectId>> {
        let mut out = Vec::new();
        for shard in self.tables.iter() {
            let tree = shard.tree.read();
            for (key, _) in tree.scan_all()? {
                if let Some(oid) = ObjectId::from_key(&key) {
                    out.push(oid);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Creates a new empty object and returns its id.
    pub fn create_object(&self, meta: ObjectMeta) -> Result<ObjectId> {
        let oid = self.oid_alloc.allocate();
        let object = Object::create(oid, self.ctx.clone(), meta, self.config.max_extent_bytes)?;
        let root = object.root_page();
        let shard = self.table(oid);
        // Hold the open-map shard lock across both publications (table
        // entry, then handle), mirroring delete: a concurrent operation on
        // this oid blocks on the shard lock and then observes either
        // nothing or the fully created object, never the table entry
        // without its handle.
        let mut map_shard = self.objects.lock_shard(oid.as_u64());
        {
            let mut tree = shard.tree.write();
            tree.insert(&oid.to_key(), &root.to_le_bytes())?;
        }
        shard.live.fetch_add(1, Ordering::Relaxed);
        map_shard.insert(
            oid.as_u64(),
            Arc::new(Mutex::new(OpenObject {
                object,
                persisted_root: root,
            })),
        );
        Ok(oid)
    }

    /// Creates an object with default metadata owned by `uid`.
    pub fn create_default(&self, uid: u32) -> Result<ObjectId> {
        self.create_object(ObjectMeta::new(uid, uid, 0o644, unix_now()))
    }

    fn load_object(&self, oid: ObjectId) -> Result<Arc<Mutex<OpenObject>>> {
        self.objects.get_or_try_insert_with(oid.as_u64(), || {
            // Not open: fetch the root page from the table shard and
            // reconstruct. Only this shard's opens wait on the load.
            let root_bytes = {
                let tree = self.table(oid).tree.read();
                tree.get(&oid.to_key())?
            };
            let Some(root_bytes) = root_bytes else {
                return Err(OsdError::NoSuchObject(oid.as_u64()));
            };
            let root =
                u64::from_le_bytes(root_bytes.as_slice().try_into().map_err(|_| {
                    OsdError::Corrupt("object table value is not a root page".into())
                })?);
            let tree = BTree::open(self.ctx.clone(), root);
            let meta_bytes = tree
                .get(&[0x00])?
                .ok_or_else(|| OsdError::Corrupt(format!("object {oid} has no metadata record")))?;
            let meta = ObjectMeta::decode(&meta_bytes)?;
            let object = Object::from_parts(oid, tree, meta, self.config.max_extent_bytes);
            Ok(Arc::new(Mutex::new(OpenObject {
                object,
                persisted_root: root,
            })))
        })
    }

    /// Runs `f` with exclusive access to the object, persisting the new
    /// extent-map root if the operation changed it.
    pub fn with_object<R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&mut Object) -> Result<R>,
    ) -> Result<R> {
        let entry = self.load_object(oid)?;
        let mut guard = entry.lock();
        let result = f(&mut guard.object)?;
        let root = guard.object.root_page();
        if root != guard.persisted_root {
            let mut tree = self.table(oid).tree.write();
            tree.insert(&oid.to_key(), &root.to_le_bytes())?;
            guard.persisted_root = root;
        }
        Ok(result)
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read(&self, oid: ObjectId, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.with_object(oid, |o| o.read(offset, len))
    }

    /// Writes `data` at `offset`, extending the object if needed.
    pub fn write(&self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.with_object(oid, |o| o.write(offset, data))
    }

    /// Appends `data` at the end of the object.
    pub fn append(&self, oid: ObjectId, data: &[u8]) -> Result<()> {
        self.with_object(oid, |o| o.append(data))
    }

    /// Inserts `data` at `offset`, shifting the tail of the object.
    pub fn insert(&self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.with_object(oid, |o| o.insert(offset, data))
    }

    /// Removes `len` bytes at `offset`, shifting the tail towards the start.
    pub fn truncate_range(&self, oid: ObjectId, offset: u64, len: u64) -> Result<()> {
        self.with_object(oid, |o| o.truncate_range(offset, len))
    }

    /// POSIX-style truncate to an absolute size.
    pub fn truncate(&self, oid: ObjectId, new_size: u64) -> Result<()> {
        self.with_object(oid, |o| o.truncate(new_size))
    }

    /// Current object size in bytes.
    pub fn len(&self, oid: ObjectId) -> Result<u64> {
        self.with_object(oid, |o| Ok(o.len()))
    }

    /// Returns `true` when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.object_count() == 0
    }

    /// Current object metadata.
    pub fn meta(&self, oid: ObjectId) -> Result<ObjectMeta> {
        self.with_object(oid, |o| Ok(o.meta()))
    }

    /// Updates security attributes / flags.
    pub fn set_meta(&self, oid: ObjectId, meta: ObjectMeta) -> Result<()> {
        self.with_object(oid, |o| o.set_meta(meta))
    }

    /// Per-object statistics (size, extent count, allocated blocks).
    pub fn object_stats(&self, oid: ObjectId) -> Result<crate::object::ObjectStats> {
        self.with_object(oid, |o| o.stats())
    }

    /// Deletes an object, freeing all of its storage.
    ///
    /// Fails with [`OsdError::Corrupt`] (and changes nothing) if another
    /// thread currently holds the object's handle; fails with
    /// [`OsdError::NoSuchObject`] if the object does not exist.
    pub fn delete(&self, oid: ObjectId) -> Result<()> {
        let entry = self.load_object(oid)?;
        let shard = self.table(oid);
        let open = {
            // Hold the open-map shard lock across both the ownership check
            // and the table removal: concurrent opens of this object block
            // on the same shard lock (load_object holds it while reading
            // the table), so once the table entry is gone they observe
            // NoSuchObject rather than resurrecting a handle over storage
            // the destroy below is about to free. Lock order is map shard
            // → table shard, the same as the load path.
            let mut map_shard = self.objects.lock_shard(oid.as_u64());
            map_shard.remove(&oid.as_u64());
            match Arc::try_unwrap(entry) {
                Ok(open) => {
                    let removed = shard.tree.write().delete(&oid.to_key())?;
                    if removed.is_some() {
                        shard.live.fetch_sub(1, Ordering::Relaxed);
                    }
                    open
                }
                Err(entry) => {
                    // Another thread still uses the object: put the handle
                    // back and fail without touching table, counter or
                    // storage, so the store stays fully consistent.
                    map_shard.insert(oid.as_u64(), entry);
                    return Err(OsdError::Corrupt(format!(
                        "object {oid} still in use during delete"
                    )));
                }
            }
        };
        open.into_inner().object.destroy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ObjectStore {
        ObjectStore::in_memory(32 * 1024 * 1024).unwrap()
    }

    fn sharded_store(shards: usize) -> ObjectStore {
        let device = Arc::new(hfad_storage::MemDevice::with_capacity(32 * 1024 * 1024));
        ObjectStore::create(
            device,
            StoreConfig {
                shards,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn create_and_list_objects() {
        let s = store();
        assert!(s.is_empty());
        let a = s.create_default(1000).unwrap();
        let b = s.create_default(1000).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.list().unwrap(), vec![a, b]);
    }

    #[test]
    fn write_read_via_store() {
        let s = store();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, b"stored bytes").unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"stored bytes".to_vec());
        assert_eq!(s.len(oid).unwrap(), 12);
        assert_eq!(s.meta(oid).unwrap().size, 12);
    }

    #[test]
    fn missing_object_reported() {
        let s = store();
        let err = s.read(ObjectId(999), 0, 10).unwrap_err();
        assert!(matches!(err, OsdError::NoSuchObject(999)));
    }

    #[test]
    fn insert_and_truncate_via_store() {
        let s = store();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, b"hello world").unwrap();
        s.insert(oid, 5, b",").unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"hello, world".to_vec());
        s.truncate_range(oid, 5, 1).unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"hello world".to_vec());
        s.truncate(oid, 5).unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"hello".to_vec());
    }

    #[test]
    fn delete_frees_space_and_forgets_object() {
        let s = store();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, &vec![1u8; 100_000]).unwrap();
        let allocated = s.stats().allocator.allocated_blocks;
        s.delete(oid).unwrap();
        assert!(s.stats().allocator.allocated_blocks < allocated);
        assert!(matches!(s.read(oid, 0, 1), Err(OsdError::NoSuchObject(_))));
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn object_ids_are_never_reused() {
        let s = store();
        let a = s.create_default(0).unwrap();
        s.delete(a).unwrap();
        let b = s.create_default(0).unwrap();
        assert!(b.as_u64() > a.as_u64());
    }

    #[test]
    fn many_objects_roundtrip() {
        let s = store();
        let mut oids = Vec::new();
        for i in 0..100u32 {
            let oid = s.create_default(0).unwrap();
            s.write(oid, 0, format!("object number {i}").as_bytes())
                .unwrap();
            oids.push(oid);
        }
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(
                s.read(*oid, 0, 100).unwrap(),
                format!("object number {i}").into_bytes()
            );
        }
        assert_eq!(s.object_count(), 100);
    }

    #[test]
    fn reload_after_cache_eviction_equivalent() {
        // Deleting the in-memory handle (by clearing the map through drop of
        // all other references) is not exposed; instead verify that an
        // object written through one handle reads correctly after another
        // object churned the table enough to split it.
        let s = store();
        let first = s.create_default(0).unwrap();
        s.write(first, 0, b"persistent").unwrap();
        for _ in 0..500 {
            s.create_default(0).unwrap();
        }
        assert_eq!(s.read(first, 0, 100).unwrap(), b"persistent".to_vec());
    }

    #[test]
    fn bump_allocator_store_works() {
        let device = Arc::new(hfad_storage::MemDevice::with_capacity(8 * 1024 * 1024));
        let s = ObjectStore::create(
            device,
            StoreConfig {
                allocator: AllocatorKind::Bump,
                ..Default::default()
            },
        )
        .unwrap();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, b"bump-backed").unwrap();
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"bump-backed".to_vec());
        assert!(s.stats().allocator.free_blocks > 0);
    }

    #[test]
    fn concurrent_access_to_distinct_objects() {
        let s = Arc::new(store());
        let oids: Vec<ObjectId> = (0..8).map(|_| s.create_default(0).unwrap()).collect();
        let mut handles = Vec::new();
        for (t, oid) in oids.iter().enumerate() {
            let s = Arc::clone(&s);
            let oid = *oid;
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let data = vec![t as u8; 64];
                    s.write(oid, i * 64, &data).unwrap();
                }
                s.len(oid).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 50 * 64);
        }
    }

    #[test]
    fn concurrent_creates_get_unique_ids() {
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..25)
                    .map(|_| s.create_default(0).unwrap().as_u64())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
        assert_eq!(s.object_count(), 200);
    }

    // ------------------------------------------------------------------
    // Sharding-specific coverage.
    // ------------------------------------------------------------------

    #[test]
    fn shard_count_resolution() {
        assert_eq!(sharded_store(1).shard_count(), 1);
        assert_eq!(sharded_store(3).shard_count(), 4);
        assert_eq!(sharded_store(8).shard_count(), 8);
        // Auto (0) resolves to a power of two ≥ 1.
        let auto = sharded_store(0);
        assert!(auto.shard_count().is_power_of_two());
        assert_eq!(auto.stats().shards, auto.shard_count());
    }

    /// Creates objects until `want` oids land in the same shard as each
    /// other and `want` in a different one, returning `(same, other)`.
    fn colliding_oids(s: &ObjectStore, want: usize) -> (Vec<ObjectId>, Vec<ObjectId>) {
        let probe = s.create_default(0).unwrap();
        let target = s.shard_of(probe);
        let mut same = vec![probe];
        let mut other = Vec::new();
        while same.len() < want || other.len() < want {
            let oid = s.create_default(0).unwrap();
            if s.shard_of(oid) == target {
                same.push(oid);
            } else if other.len() < want {
                other.push(oid);
            }
        }
        (same, other)
    }

    #[test]
    fn same_shard_and_cross_shard_lifecycle() {
        let s = sharded_store(4);
        let (same, other) = colliding_oids(&s, 3);
        // Interleave writes/deletes on same-shard and cross-shard oids; the
        // shard routing must never confuse one object for another.
        for (i, oid) in same.iter().chain(other.iter()).enumerate() {
            s.write(*oid, 0, format!("payload {i}").as_bytes()).unwrap();
        }
        s.delete(same[1]).unwrap();
        s.delete(other[0]).unwrap();
        assert!(matches!(
            s.read(same[1], 0, 1),
            Err(OsdError::NoSuchObject(_))
        ));
        assert!(matches!(
            s.read(other[0], 0, 1),
            Err(OsdError::NoSuchObject(_))
        ));
        // Survivors in both shards still read back correctly.
        assert_eq!(s.read(same[0], 0, 100).unwrap(), b"payload 0".to_vec());
        assert_eq!(s.read(same[2], 0, 100).unwrap(), b"payload 2".to_vec());
        let expected = format!("payload {}", same.len() + 1).into_bytes();
        assert_eq!(s.read(other[1], 0, 100).unwrap(), expected);
        let listed = s.list().unwrap();
        assert!(!listed.contains(&same[1]) && !listed.contains(&other[0]));
        assert_eq!(listed.len() as u64, s.object_count());
    }

    #[test]
    fn reopen_after_cache_eviction_crosses_shards() {
        // An object whose open handle was evicted must reload through
        // load_object's cold path from the correct table shard.
        let s = sharded_store(8);
        let (same, other) = colliding_oids(&s, 2);
        for oid in same.iter().chain(other.iter()) {
            s.write(*oid, 0, oid.to_string().as_bytes()).unwrap();
        }
        // Force table splits in every touched shard.
        for _ in 0..200 {
            s.create_default(0).unwrap();
        }
        // Evict the cached handles (test-only: the map is private) so the
        // reads below cannot be served from the open-object cache.
        for oid in same.iter().chain(other.iter()) {
            s.objects.remove(oid.as_u64()).expect("handle was cached");
        }
        for oid in same.iter().chain(other.iter()) {
            assert_eq!(
                s.read(*oid, 0, 100).unwrap(),
                oid.to_string().into_bytes(),
                "oid {oid} in shard {} misrouted on cold reload",
                s.shard_of(*oid)
            );
        }
    }

    #[test]
    fn concurrent_create_remove_keeps_object_count_consistent() {
        // StoreStats.objects is a per-shard counter sum; under concurrent
        // create/delete churn it must end exactly equal to the number of
        // surviving objects in the table.
        let s = Arc::new(sharded_store(4));
        let threads = 8;
        let per_thread = 40;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut survivors = 0u64;
                for i in 0..per_thread {
                    let oid = s.create_default(0).unwrap();
                    if i % 2 == 0 {
                        s.delete(oid).unwrap();
                    } else {
                        survivors += 1;
                    }
                }
                survivors
            }));
        }
        let expected: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(s.object_count(), expected);
        assert_eq!(s.stats().objects, expected);
        assert_eq!(s.list().unwrap().len() as u64, expected);
    }

    #[test]
    fn delete_while_in_use_fails_cleanly_and_retry_succeeds() {
        let s = Arc::new(sharded_store(4));
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, b"guarded").unwrap();
        let (in_cs_tx, in_cs_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let s2 = Arc::clone(&s);
        let holder = std::thread::spawn(move || {
            s2.with_object(oid, |o| {
                in_cs_tx.send(()).unwrap();
                done_rx.recv().unwrap();
                o.read(0, 7)
            })
            .unwrap()
        });
        in_cs_rx.recv().unwrap();
        // Another thread holds the object's handle: delete must refuse and
        // leave table, counter and storage untouched.
        assert!(matches!(s.delete(oid), Err(OsdError::Corrupt(_))));
        assert_eq!(s.object_count(), 1);
        done_tx.send(()).unwrap();
        assert_eq!(holder.join().unwrap(), b"guarded".to_vec());
        // The failed delete must not have half-deleted anything: the object
        // is still fully usable, and a retry now succeeds.
        assert_eq!(s.read(oid, 0, 100).unwrap(), b"guarded".to_vec());
        s.delete(oid).unwrap();
        assert_eq!(s.object_count(), 0);
        assert!(s.list().unwrap().is_empty());
    }

    // ------------------------------------------------------------------
    // Two-tier cache wiring.
    // ------------------------------------------------------------------

    fn cached_store(cache_shards: usize, node_cache_pages: usize) -> ObjectStore {
        let device = Arc::new(hfad_storage::MemDevice::with_capacity(32 * 1024 * 1024));
        ObjectStore::create(
            device,
            StoreConfig {
                cache_blocks: 2048,
                cache_shards,
                node_cache_pages,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn cached_store_full_lifecycle_and_stats() {
        for (cache_shards, node_cache_pages) in [(1, 0), (4, 1024)] {
            let s = cached_store(cache_shards, node_cache_pages);
            let oid = s.create_default(0).unwrap();
            s.write(oid, 0, b"through the cache").unwrap();
            assert_eq!(s.read(oid, 0, 100).unwrap(), b"through the cache".to_vec());
            let cache = s.block_cache().expect("cache configured");
            assert_eq!(cache.shard_count() == 1, cache_shards == 1);
            let stats = s.stats();
            let cache_stats = stats.block_cache.expect("cache stats reported");
            assert!(cache_stats.hits > 0, "reads must hit the block cache");
            let other = s.create_default(0).unwrap();
            s.write(other, 0, &vec![7u8; 100_000]).unwrap();
            s.delete(other).unwrap();
            assert_eq!(s.read(oid, 0, 100).unwrap(), b"through the cache".to_vec());
        }
    }

    #[test]
    fn uncached_store_reports_no_cache() {
        let s = store();
        assert!(s.block_cache().is_none());
        assert!(s.stats().block_cache.is_none());
    }

    #[test]
    fn cached_store_flush_makes_data_reach_backing_device() {
        let backing = Arc::new(hfad_storage::MemDevice::with_capacity(8 * 1024 * 1024));
        let s = ObjectStore::create(
            Arc::clone(&backing) as Arc<dyn hfad_storage::BlockDevice>,
            StoreConfig {
                cache_blocks: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let oid = s.create_default(0).unwrap();
        s.write(oid, 0, b"must become durable").unwrap();
        let writes_before = backing.counters().writes;
        s.block_cache().unwrap().flush().unwrap();
        assert!(
            backing.counters().writes > writes_before,
            "flush must write dirty frames back to the wrapped device"
        );
    }

    #[test]
    fn single_shard_store_still_correct() {
        let s = sharded_store(1);
        assert_eq!(s.shard_count(), 1);
        let a = s.create_default(0).unwrap();
        let b = s.create_default(0).unwrap();
        assert_eq!(s.shard_of(a), 0);
        assert_eq!(s.shard_of(b), 0);
        s.write(a, 0, b"one").unwrap();
        s.write(b, 0, b"two").unwrap();
        s.delete(a).unwrap();
        assert_eq!(s.read(b, 0, 100).unwrap(), b"two".to_vec());
        assert_eq!(s.object_count(), 1);
    }
}

//! Optional transactional wrapper over the object store.
//!
//! The paper: "In ZFS, the DMU is a transactional object store; in hFAD,
//! the OSD may be transactional, but this is an implementation decision,
//! not a requirement" (§3.3). [`TxnStore`] makes the decision configurable:
//! data operations are buffered in a [`Transaction`], logged to the
//! write-ahead journal at commit, synced, and only then applied to the
//! store. Experiment E6 ablates its cost against the plain store.
//!
//! The journal is intentionally a single serial log even though the store
//! underneath is sharded (see [`crate::store`]): commit ordering is a
//! durability property, not a namespace property, so transactions pay one
//! append stream while the applied operations still spread across the
//! store's shards. What *is* amortised is the flush: commits go through
//! the storage layer's [`GroupCommit`] pipeline, so concurrent
//! transactions share one contiguous journal append and one device sync
//! per batch (configure with [`TxnStore::with_config`]; a `max_batch` of
//! zero reproduces the sync-per-commit seed behaviour for the E8
//! ablation).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hfad_storage::{
    GroupCommit, GroupCommitConfig, GroupCommitStats, Journal, RecordKind, StorageError,
};
use parking_lot::RwLock;

use crate::error::{OsdError, Result};
use crate::oid::ObjectId;
use crate::store::ObjectStore;

/// A logged, redo-only operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Overwrite/extend at an offset.
    Write {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Insert bytes into the middle of an object.
    Insert {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to insert.
        data: Vec<u8>,
    },
    /// Remove a byte range from an object.
    TruncateRange {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to remove.
        len: u64,
    },
}

impl TxnOp {
    /// Serialises the operation for the journal.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            TxnOp::Write { oid, offset, data } => {
                out.push(1);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(data);
            }
            TxnOp::Insert { oid, offset, data } => {
                out.push(2);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(data);
            }
            TxnOp::TruncateRange { oid, offset, len } => {
                out.push(3);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        out
    }

    /// Deserialises an operation written by [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 17 {
            return Err(OsdError::Corrupt("transaction record too short".into()));
        }
        let oid = ObjectId(u64::from_le_bytes(buf[1..9].try_into().expect("u64")));
        let offset = u64::from_le_bytes(buf[9..17].try_into().expect("u64"));
        match buf[0] {
            1 => Ok(TxnOp::Write {
                oid,
                offset,
                data: buf[17..].to_vec(),
            }),
            2 => Ok(TxnOp::Insert {
                oid,
                offset,
                data: buf[17..].to_vec(),
            }),
            3 => {
                if buf.len() < 25 {
                    return Err(OsdError::Corrupt("truncate record too short".into()));
                }
                Ok(TxnOp::TruncateRange {
                    oid,
                    offset,
                    len: u64::from_le_bytes(buf[17..25].try_into().expect("u64")),
                })
            }
            other => Err(OsdError::Corrupt(format!(
                "unknown transaction opcode {other}"
            ))),
        }
    }

    fn apply(&self, store: &ObjectStore) -> Result<()> {
        match self {
            TxnOp::Write { oid, offset, data } => store.write(*oid, *offset, data),
            TxnOp::Insert { oid, offset, data } => store.insert(*oid, *offset, data),
            TxnOp::TruncateRange { oid, offset, len } => store.truncate_range(*oid, *offset, *len),
        }
    }
}

/// A transactional facade over an [`ObjectStore`].
pub struct TxnStore {
    store: Arc<ObjectStore>,
    group: GroupCommit<Arc<dyn hfad_storage::BlockDevice>>,
    next_txn: AtomicU64,
    /// Excludes checkpoints from in-flight commits: a committing
    /// transaction holds a read lock from journal append through apply, a
    /// checkpoint holds the write lock, so the journal is only ever reset
    /// when no acknowledged transaction is still waiting to be applied.
    checkpoint_gate: RwLock<()>,
    auto_checkpoints: AtomicU64,
}

impl TxnStore {
    /// Wraps `store` with the default group-commit policy (batching on,
    /// zero leader wait: lone committers flush immediately, concurrent
    /// committers batch naturally). The journal is placed in the region
    /// the store's superblock reserved; the store must have been created
    /// with `journal_blocks > 0`.
    pub fn new(store: Arc<ObjectStore>) -> Result<Self> {
        Self::with_config(store, GroupCommitConfig::default())
    }

    /// Wraps `store` with an explicit group-commit policy.
    /// `GroupCommitConfig::unbatched()` restores sync-per-commit.
    pub fn with_config(store: Arc<ObjectStore>, config: GroupCommitConfig) -> Result<Self> {
        let sb = store.superblock();
        if sb.journal_blocks == 0 {
            return Err(OsdError::Corrupt(
                "store was created without a journal region".to_string(),
            ));
        }
        let journal = Journal::new(
            Arc::clone(&store.context().device),
            sb.journal_start,
            sb.journal_blocks,
        )?;
        Ok(TxnStore {
            store,
            group: GroupCommit::new(journal, config),
            next_txn: AtomicU64::new(1),
            checkpoint_gate: RwLock::new(()),
            auto_checkpoints: AtomicU64::new(0),
        })
    }

    /// The wrapped store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The underlying journal (recovery scans, tests).
    pub fn journal(&self) -> &Journal<Arc<dyn hfad_storage::BlockDevice>> {
        self.group.journal()
    }

    /// Commit/batch/flush counters from the group-commit pipeline.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.group.stats()
    }

    /// Begins a new transaction.
    pub fn begin(&self) -> Transaction<'_> {
        Transaction {
            txn_store: self,
            id: self.next_txn.fetch_add(1, Ordering::Relaxed),
            ops: Vec::new(),
            closed: false,
        }
    }

    /// Re-applies every committed transaction found in the journal to the
    /// store (idempotent for redo-only operations on fresh stores).
    pub fn replay(&self) -> Result<u64> {
        let mut applied = 0;
        for (_txn, payloads) in self.group.journal().committed_payloads()? {
            for payload in payloads {
                TxnOp::decode(&payload)?.apply(&self.store)?;
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Truncates the journal after a checkpoint.
    ///
    /// Waits for every in-flight commit to finish applying, flushes the
    /// store's device so the applied state the journal made redundant is
    /// itself durable, and only then resets the journal.
    pub fn checkpoint(&self) -> Result<()> {
        let _exclusive = self.checkpoint_gate.write();
        self.checkpoint_locked()
    }

    /// The checkpoint body; caller holds the exclusive gate.
    fn checkpoint_locked(&self) -> Result<()> {
        self.store.context().device.flush()?;
        self.group.journal().reset()?;
        Ok(())
    }

    /// Number of checkpoints triggered automatically by a full journal
    /// (see [`Transaction::commit`]).
    pub fn auto_checkpoints(&self) -> u64 {
        self.auto_checkpoints.load(Ordering::Relaxed)
    }
}

/// An open transaction; buffered operations are applied atomically (with
/// respect to crashes before commit) when [`commit`](Self::commit) is
/// called.
pub struct Transaction<'a> {
    txn_store: &'a TxnStore,
    id: u64,
    ops: Vec<TxnOp>,
    closed: bool,
}

impl Transaction<'_> {
    fn check_open(&self) -> Result<()> {
        if self.closed {
            Err(OsdError::TransactionClosed)
        } else {
            Ok(())
        }
    }

    /// Transaction id (for diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no operations have been buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Buffers a write.
    pub fn write(&mut self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::Write {
            oid,
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Buffers a mid-object insert.
    pub fn insert(&mut self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::Insert {
            oid,
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Buffers a range truncate.
    pub fn truncate_range(&mut self, oid: ObjectId, offset: u64, len: u64) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::TruncateRange { oid, offset, len });
        Ok(())
    }

    /// Logs, syncs and applies the buffered operations.
    ///
    /// The commit rides the store's group-commit pipeline: this call
    /// blocks until the transaction's journal frames — and those of every
    /// transaction batched with it — are flushed. Only then are the
    /// operations applied to the store.
    ///
    /// A commit rejected because the journal region has filled up
    /// triggers an automatic checkpoint (wait for in-flight commits to
    /// apply, flush the store's device, reset the journal) and retries
    /// once, so callers only ever see [`StorageError::JournalFull`]
    /// for a transaction too large to fit even an *empty* journal region.
    pub fn commit(mut self) -> Result<()> {
        self.check_open()?;
        self.closed = true;
        let ts = self.txn_store;
        let region_bytes = ts.group.journal().region_bytes();
        loop {
            let gate = ts.checkpoint_gate.read();
            // Payloads are encoded per attempt so the common (no-retry)
            // path never pays a defensive clone.
            let payloads: Vec<Vec<u8>> = self.ops.iter().map(TxnOp::encode).collect();
            match ts.group.commit(self.id, payloads) {
                Ok(_) => {
                    // Apply while still holding the gate: a checkpoint
                    // must not reset the journal while this acknowledged
                    // transaction's redo is its only durable record.
                    for op in &self.ops {
                        op.apply(&ts.store)?;
                    }
                    return Ok(());
                }
                Err(err @ StorageError::JournalFull { needed, .. }) => {
                    if needed as u64 > region_bytes {
                        // Too large for even an empty region: no number
                        // of checkpoints can admit it.
                        return Err(err.into());
                    }
                    // The journal is full of *previous* transactions'
                    // frames. Checkpoint and retry: the gate is dropped
                    // first so batch-mates that also hit JournalFull can
                    // race us to the write lock; whoever wins resets, the
                    // rest loop and retry into an emptied (or re-filling)
                    // region.
                    drop(gate);
                    let _exclusive = ts.checkpoint_gate.write();
                    ts.checkpoint_locked()?;
                    ts.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) => return Err(err.into()),
            }
        }
    }

    /// Discards the buffered operations, recording an abort in the journal.
    pub fn abort(mut self) -> Result<()> {
        self.check_open()?;
        self.closed = true;
        let journal = self.txn_store.group.journal();
        journal.append(self.id, RecordKind::Abort, b"")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use hfad_storage::MemDevice;

    fn txn_store() -> TxnStore {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        TxnStore::new(store).unwrap()
    }

    #[test]
    fn committed_transaction_applies() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"transactional hello").unwrap();
        txn.insert(oid, 13, b" brave").unwrap();
        txn.commit().unwrap();
        assert_eq!(
            ts.store().read(oid, 0, 100).unwrap(),
            b"transactional brave hello".to_vec()
        );
    }

    #[test]
    fn aborted_transaction_leaves_no_trace() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        ts.store().write(oid, 0, b"original").unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"clobbered").unwrap();
        txn.abort().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"original".to_vec());
        // Replay must not resurrect the aborted write either.
        ts.replay().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"original".to_vec());
    }

    #[test]
    fn replay_reapplies_committed_operations() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"abcdef").unwrap();
        txn.truncate_range(oid, 1, 2).unwrap();
        txn.commit().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"adef".to_vec());
        // Simulate the post-crash redo path: wipe the object, replay the log.
        ts.store().truncate(oid, 0).unwrap();
        let applied = ts.replay().unwrap();
        assert_eq!(applied, 2);
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"adef".to_vec());
    }

    #[test]
    fn checkpoint_empties_journal() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"x").unwrap();
        txn.commit().unwrap();
        ts.checkpoint().unwrap();
        assert_eq!(ts.replay().unwrap(), 0);
    }

    #[test]
    fn concurrent_batched_commits_all_apply_and_amortize_flushes() {
        let device = Arc::new(MemDevice::with_capacity(32 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 1024,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = Arc::new(
            TxnStore::with_config(
                Arc::clone(&store),
                hfad_storage::GroupCommitConfig::batched(16, std::time::Duration::from_micros(200)),
            )
            .unwrap(),
        );
        let threads = 4usize;
        let per_thread = 16usize;
        let oids: Vec<_> = (0..threads)
            .map(|_| ts.store().create_default(0).unwrap())
            .collect();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ts = Arc::clone(&ts);
                let oid = oids[t];
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let mut txn = ts.begin();
                        txn.write(oid, (i * 8) as u64, format!("w{t:02}{i:03}").as_bytes())
                            .unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (t, oid) in oids.iter().enumerate() {
            let last = format!("w{t:02}{:03}", per_thread - 1);
            let data = ts
                .store()
                .read(*oid, ((per_thread - 1) * 8) as u64, last.len() as u64)
                .unwrap();
            assert_eq!(data, last.as_bytes());
        }
        let stats = ts.group_commit_stats();
        assert_eq!(stats.commits, (threads * per_thread) as u64);
        assert!(stats.max_batch >= 1 && stats.max_batch <= 16);
        assert!(stats.flushes <= stats.commits);
        // Every acknowledged commit must be replayable from the journal.
        assert_eq!(
            ts.journal().committed_payloads().unwrap().len(),
            threads * per_thread
        );
    }

    #[test]
    fn unbatched_config_reproduces_sync_per_commit() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts =
            TxnStore::with_config(store, hfad_storage::GroupCommitConfig::unbatched()).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        for i in 0..4u64 {
            let mut txn = ts.begin();
            txn.write(oid, i * 4, b"abcd").unwrap();
            txn.commit().unwrap();
        }
        let stats = ts.group_commit_stats();
        assert_eq!(stats.commits, 4);
        assert_eq!(stats.flushes, 4);
        assert_eq!(stats.max_batch, 1);
    }

    #[test]
    fn oversized_transaction_fails_with_journal_full() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 1,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = TxnStore::new(store).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, &vec![0u8; 64 * 1024]).unwrap();
        let err = txn.commit().unwrap_err();
        assert!(matches!(
            err,
            OsdError::Storage(hfad_storage::StorageError::JournalFull { .. })
        ));
        // The failed commit must not have been applied to the store.
        assert_eq!(ts.store().len(oid).unwrap(), 0);
        // The journal region is still usable for transactions that fit.
        let mut txn = ts.begin();
        txn.write(oid, 0, b"fits").unwrap();
        txn.commit().unwrap();
        assert_eq!(ts.store().read(oid, 0, 4).unwrap(), b"fits".to_vec());
    }

    #[test]
    fn journal_full_triggers_auto_checkpoint_and_commit_succeeds() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    // Tiny region: fills after a handful of commits.
                    journal_blocks: 2,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = TxnStore::new(store).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        // Far more commit bytes than the region holds: without
        // auto-checkpoint this loop would fail with JournalFull.
        for i in 0..64u64 {
            let mut txn = ts.begin();
            txn.write(oid, i * 128, &[i as u8; 128]).unwrap();
            txn.commit().unwrap();
        }
        assert!(
            ts.auto_checkpoints() >= 1,
            "the tiny journal must have forced at least one auto-checkpoint"
        );
        // Every commit was applied.
        for i in 0..64u64 {
            assert_eq!(
                ts.store().read(oid, i * 128, 128).unwrap(),
                vec![i as u8; 128],
                "commit {i}"
            );
        }
    }

    #[test]
    fn concurrent_commits_survive_auto_checkpoints() {
        let device = Arc::new(MemDevice::with_capacity(32 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 4,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = Arc::new(TxnStore::new(store).unwrap());
        let threads = 4usize;
        let per_thread = 32usize;
        let oids: Vec<_> = (0..threads)
            .map(|_| ts.store().create_default(0).unwrap())
            .collect();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ts = Arc::clone(&ts);
                let oid = oids[t];
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let mut txn = ts.begin();
                        txn.write(oid, (i * 64) as u64, &[(t * 16 + 1) as u8; 64])
                            .unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(ts.auto_checkpoints() >= 1);
        for (t, oid) in oids.iter().enumerate() {
            assert_eq!(
                ts.store().len(*oid).unwrap(),
                (per_thread * 64) as u64,
                "thread {t} lost commits"
            );
        }
    }

    #[test]
    fn store_without_journal_rejected() {
        let store = Arc::new(ObjectStore::in_memory(4 * 1024 * 1024).unwrap());
        assert!(TxnStore::new(store).is_err());
    }

    #[test]
    fn txn_op_round_trip() {
        for op in [
            TxnOp::Write {
                oid: ObjectId(3),
                offset: 10,
                data: b"abc".to_vec(),
            },
            TxnOp::Insert {
                oid: ObjectId(4),
                offset: 0,
                data: vec![],
            },
            TxnOp::TruncateRange {
                oid: ObjectId(5),
                offset: 100,
                len: 50,
            },
        ] {
            assert_eq!(TxnOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(TxnOp::decode(&[9u8; 30]).is_err());
        assert!(TxnOp::decode(&[1u8; 4]).is_err());
    }
}

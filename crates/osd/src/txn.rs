//! Optional transactional wrapper over the object store.
//!
//! The paper: "In ZFS, the DMU is a transactional object store; in hFAD,
//! the OSD may be transactional, but this is an implementation decision,
//! not a requirement" (§3.3). [`TxnStore`] makes the decision configurable:
//! data operations are buffered in a [`Transaction`], logged to the
//! write-ahead journal at commit, synced, and only then applied to the
//! store. Experiment E6 ablates its cost against the plain store.
//!
//! The journal is intentionally a single serial log even though the store
//! underneath is sharded (see [`crate::store`]): commit ordering is a
//! durability property, not a namespace property, so transactions pay one
//! append stream while the applied operations still spread across the
//! store's shards. What *is* amortised is the flush: commits go through
//! the storage layer's [`GroupCommit`] pipeline, so concurrent
//! transactions share one contiguous journal append and one device sync
//! per batch (configure with [`TxnStore::with_config`]; a `max_batch` of
//! zero reproduces the sync-per-commit seed behaviour for the E8
//! ablation).
//!
//! The journal is circular, so sustained write traffic is a first-class
//! citizen: a full ring is **backpressure, not an error**. With a
//! [`crate::checkpoint::Checkpointer`] attached, checkpoints fire off
//! size/age watermarks and run concurrently with new admissions
//! ([`TxnStore::checkpoint_background`]); a committer that outruns the
//! drain briefly blocks until extents are reclaimed. Without one, a full
//! ring triggers the inline stop-the-world checkpoint, preserving the
//! seed contract. Either way `JournalFull` only reaches callers for a
//! transaction bigger than the empty ring. Stall time and checkpoint
//! counts are exposed via [`TxnStore::checkpoint_stats`], and experiment
//! E11 measures the steady-state difference between the two modes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::{Condvar, Mutex};

use hfad_storage::{
    GroupCommit, GroupCommitConfig, GroupCommitStats, Journal, RecordKind, StorageError,
};
use parking_lot::RwLock;

use crate::error::{OsdError, Result};
use crate::oid::ObjectId;
use crate::store::{ObjectStore, StoreStats};

/// A logged, redo-only operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Overwrite/extend at an offset.
    Write {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Insert bytes into the middle of an object.
    Insert {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to insert.
        data: Vec<u8>,
    },
    /// Remove a byte range from an object.
    TruncateRange {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to remove.
        len: u64,
    },
}

impl TxnOp {
    /// Serialises the operation for the journal.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            TxnOp::Write { oid, offset, data } => {
                out.push(1);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(data);
            }
            TxnOp::Insert { oid, offset, data } => {
                out.push(2);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(data);
            }
            TxnOp::TruncateRange { oid, offset, len } => {
                out.push(3);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        out
    }

    /// Deserialises an operation written by [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 17 {
            return Err(OsdError::Corrupt("transaction record too short".into()));
        }
        let oid = ObjectId(u64::from_le_bytes(buf[1..9].try_into().expect("u64")));
        let offset = u64::from_le_bytes(buf[9..17].try_into().expect("u64"));
        match buf[0] {
            1 => Ok(TxnOp::Write {
                oid,
                offset,
                data: buf[17..].to_vec(),
            }),
            2 => Ok(TxnOp::Insert {
                oid,
                offset,
                data: buf[17..].to_vec(),
            }),
            3 => {
                if buf.len() < 25 {
                    return Err(OsdError::Corrupt("truncate record too short".into()));
                }
                Ok(TxnOp::TruncateRange {
                    oid,
                    offset,
                    len: u64::from_le_bytes(buf[17..25].try_into().expect("u64")),
                })
            }
            other => Err(OsdError::Corrupt(format!(
                "unknown transaction opcode {other}"
            ))),
        }
    }

    fn apply(&self, store: &ObjectStore) -> Result<()> {
        match self {
            TxnOp::Write { oid, offset, data } => store.write(*oid, *offset, data),
            TxnOp::Insert { oid, offset, data } => store.insert(*oid, *offset, data),
            TxnOp::TruncateRange { oid, offset, len } => store.truncate_range(*oid, *offset, *len),
        }
    }
}

/// Upper bounds of the commit-stall histogram buckets, in nanoseconds.
/// Bucket 0 is "no stall"; the last bucket is everything above the final
/// bound. Chosen around the E8/E11 flush-delay fixtures: a stop-the-world
/// checkpoint lands in the top buckets, watermark backpressure in the
/// middle ones.
pub const STALL_BUCKET_BOUNDS_NS: [u64; 4] = [100_000, 500_000, 2_000_000, 10_000_000];

/// Number of commit-stall histogram buckets.
pub const STALL_BUCKETS: usize = STALL_BUCKET_BOUNDS_NS.len() + 2;

/// How long a committer waits on the background checkpointer to free
/// journal space before giving up and checkpointing inline itself.
const BACKPRESSURE_PATIENCE: Duration = Duration::from_millis(200);

/// Checkpoint and commit-stall counters for one [`TxnStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints begun (inline and background).
    pub checkpoints_started: u64,
    /// Checkpoints that ran to completion.
    pub checkpoints_completed: u64,
    /// Inline checkpoints forced by a full journal on the commit path
    /// (the stop-the-world fallback when no checkpointer is attached or
    /// backpressure patience runs out).
    pub auto_checkpoints: u64,
    /// Commits that stalled waiting for journal space.
    pub commit_stalls: u64,
    /// Total nanoseconds commits spent stalled on journal space.
    pub commit_stall_ns: u64,
    /// Longest single commit stall, in nanoseconds.
    pub max_commit_stall_ns: u64,
    /// Per-commit stall histogram: bucket 0 is stall-free commits, then
    /// one bucket per bound in [`STALL_BUCKET_BOUNDS_NS`], then an
    /// overflow bucket. Every successful commit lands in exactly one.
    pub stall_histogram: [u64; STALL_BUCKETS],
}

/// One stats snapshot covering the whole transactional stack: the store
/// (objects, device counters, allocator, block cache), the group-commit
/// pipeline and the checkpoint/stall counters.
#[derive(Debug, Clone)]
pub struct TxnStoreStats {
    /// The wrapped store's snapshot.
    pub store: StoreStats,
    /// Commit/batch/flush counters from the group-commit pipeline.
    pub group_commit: GroupCommitStats,
    /// Checkpoint and commit-stall counters.
    pub checkpoint: CheckpointStats,
}

/// The condvar plumbing between committers and the background
/// checkpointer.
struct CheckpointSignals {
    /// True while a [`crate::checkpoint::Checkpointer`] is attached; the
    /// commit path only waits on backpressure when someone is draining.
    checkpointer_attached: AtomicBool,
    /// Set by a starved committer; cleared when the monitor picks it up.
    requested: AtomicBool,
    /// Wakes the checkpointer monitor (request or shutdown).
    wake_lock: Mutex<()>,
    wake_cv: Condvar,
    /// Wakes committers stalled on journal space after a reclaim.
    space_lock: Mutex<()>,
    space_cv: Condvar,
}

/// A transactional facade over an [`ObjectStore`].
pub struct TxnStore {
    store: Arc<ObjectStore>,
    group: GroupCommit<Arc<dyn hfad_storage::BlockDevice>>,
    next_txn: AtomicU64,
    /// Excludes checkpoints from in-flight commits: a committing
    /// transaction holds a read lock from journal append through apply, a
    /// checkpoint holds the write lock, so the journal's live extent is
    /// only ever reclaimed when no acknowledged transaction is still
    /// waiting to be applied.
    checkpoint_gate: RwLock<()>,
    auto_checkpoints: AtomicU64,
    checkpoints_started: AtomicU64,
    checkpoints_completed: AtomicU64,
    commit_stalls: AtomicU64,
    commit_stall_ns: AtomicU64,
    max_commit_stall_ns: AtomicU64,
    stall_histogram: [AtomicU64; STALL_BUCKETS],
    signals: CheckpointSignals,
}

impl TxnStore {
    /// Wraps `store` with the default group-commit policy (batching on,
    /// zero leader wait: lone committers flush immediately, concurrent
    /// committers batch naturally). The journal is placed in the region
    /// the store's superblock reserved; the store must have been created
    /// with `journal_blocks > 0`.
    pub fn new(store: Arc<ObjectStore>) -> Result<Self> {
        Self::with_config(store, GroupCommitConfig::default())
    }

    /// Wraps `store` with an explicit group-commit policy.
    /// `GroupCommitConfig::unbatched()` restores sync-per-commit.
    pub fn with_config(store: Arc<ObjectStore>, config: GroupCommitConfig) -> Result<Self> {
        let sb = store.superblock();
        if sb.journal_blocks == 0 {
            return Err(OsdError::Corrupt(
                "store was created without a journal region".to_string(),
            ));
        }
        let journal = Journal::new(
            Arc::clone(&store.context().device),
            sb.journal_start,
            sb.journal_blocks,
        )?;
        Ok(TxnStore {
            store,
            group: GroupCommit::new(journal, config),
            next_txn: AtomicU64::new(1),
            checkpoint_gate: RwLock::new(()),
            auto_checkpoints: AtomicU64::new(0),
            checkpoints_started: AtomicU64::new(0),
            checkpoints_completed: AtomicU64::new(0),
            commit_stalls: AtomicU64::new(0),
            commit_stall_ns: AtomicU64::new(0),
            max_commit_stall_ns: AtomicU64::new(0),
            stall_histogram: Default::default(),
            signals: CheckpointSignals {
                checkpointer_attached: AtomicBool::new(false),
                requested: AtomicBool::new(false),
                wake_lock: Mutex::new(()),
                wake_cv: Condvar::new(),
                space_lock: Mutex::new(()),
                space_cv: Condvar::new(),
            },
        })
    }

    /// The wrapped store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The underlying journal (recovery scans, tests).
    pub fn journal(&self) -> &Journal<Arc<dyn hfad_storage::BlockDevice>> {
        self.group.journal()
    }

    /// Commit/batch/flush counters from the group-commit pipeline.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.group.stats()
    }

    /// Begins a new transaction.
    pub fn begin(&self) -> Transaction<'_> {
        Transaction {
            txn_store: self,
            id: self.next_txn.fetch_add(1, Ordering::Relaxed),
            ops: Vec::new(),
            closed: false,
        }
    }

    /// Re-applies every committed transaction found in the journal to the
    /// store (idempotent for redo-only operations on fresh stores).
    pub fn replay(&self) -> Result<u64> {
        let mut applied = 0;
        for (_txn, payloads) in self.group.journal().committed_payloads()? {
            for payload in payloads {
                TxnOp::decode(&payload)?.apply(&self.store)?;
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Truncates the journal after a checkpoint, stop-the-world style.
    ///
    /// Waits for every in-flight commit to finish applying, flushes the
    /// store's device so the applied state the journal made redundant is
    /// itself durable, and only then reclaims the whole log. New commits
    /// are held out for the full duration; prefer
    /// [`checkpoint_background`](Self::checkpoint_background) on hot
    /// paths.
    pub fn checkpoint(&self) -> Result<()> {
        let _exclusive = self.checkpoint_gate.write();
        self.checkpoint_locked()
    }

    /// The checkpoint body; caller holds the exclusive gate.
    fn checkpoint_locked(&self) -> Result<()> {
        self.checkpoints_started.fetch_add(1, Ordering::Relaxed);
        self.store.context().device.flush()?;
        self.group.journal().reset()?;
        self.checkpoints_completed.fetch_add(1, Ordering::Relaxed);
        self.notify_space_freed();
        Ok(())
    }

    /// Checkpoints while admitting new commits concurrently.
    ///
    /// The sequence is: snapshot the journal head, then briefly acquire
    /// (and immediately release) the exclusive gate — a barrier that
    /// waits only for commits already acknowledged to finish applying,
    /// bounded by in-memory apply time, never by device flushes — then
    /// flush the store's device and reclaim the log up to the snapshot.
    /// Commits appending after the snapshot sit past the mark and stay
    /// live, so the journal keeps admitting batches while the flush (the
    /// expensive part) runs.
    ///
    /// A crash between the flush and the tail advance leaves the old
    /// tail in effect: recovery replays extra already-applied
    /// transactions, which is safe for redo-only records.
    pub fn checkpoint_background(&self) -> Result<()> {
        self.checkpoints_started.fetch_add(1, Ordering::Relaxed);
        let mark = self.group.journal().mark();
        // Every commit covered by the mark acquired the read gate before
        // appending and releases it after applying; draining the gate
        // once means everything up to the mark is applied in memory.
        drop(self.checkpoint_gate.write());
        self.store.context().device.flush()?;
        self.group.journal().reclaim_to(mark)?;
        self.checkpoints_completed.fetch_add(1, Ordering::Relaxed);
        self.notify_space_freed();
        Ok(())
    }

    /// Number of inline checkpoints forced by a full journal on the
    /// commit path (see [`Transaction::commit`]).
    pub fn auto_checkpoints(&self) -> u64 {
        self.auto_checkpoints.load(Ordering::Relaxed)
    }

    /// Checkpoint and commit-stall counters.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        let mut histogram = [0u64; STALL_BUCKETS];
        for (slot, counter) in histogram.iter_mut().zip(&self.stall_histogram) {
            *slot = counter.load(Ordering::Relaxed);
        }
        CheckpointStats {
            checkpoints_started: self.checkpoints_started.load(Ordering::Relaxed),
            checkpoints_completed: self.checkpoints_completed.load(Ordering::Relaxed),
            auto_checkpoints: self.auto_checkpoints.load(Ordering::Relaxed),
            commit_stalls: self.commit_stalls.load(Ordering::Relaxed),
            commit_stall_ns: self.commit_stall_ns.load(Ordering::Relaxed),
            max_commit_stall_ns: self.max_commit_stall_ns.load(Ordering::Relaxed),
            stall_histogram: histogram,
        }
    }

    /// One snapshot covering the whole stack: store, group commit and
    /// checkpointing.
    pub fn stats(&self) -> TxnStoreStats {
        TxnStoreStats {
            store: self.store.stats(),
            group_commit: self.group_commit_stats(),
            checkpoint: self.checkpoint_stats(),
        }
    }

    // ------------------------------------------------------------------
    // Backpressure plumbing between committers and the checkpointer.
    // ------------------------------------------------------------------

    /// Blocks until the journal has `needed` free bytes, checkpointing as
    /// required. With a checkpointer attached this is backpressure: ask
    /// it to drain, wait for reclaimed space, and only checkpoint inline
    /// (stop-the-world) if patience runs out. Without one, it is the
    /// seed-equivalent inline auto-checkpoint.
    fn wait_for_space(&self, needed: u64) -> Result<()> {
        let journal = self.group.journal();
        if self.signals.checkpointer_attached.load(Ordering::Acquire) {
            self.request_checkpoint();
            let deadline = Instant::now() + BACKPRESSURE_PATIENCE;
            let mut guard = self.signals.space_lock.lock().expect("space lock");
            while journal.available_bytes() < needed
                && self.signals.checkpointer_attached.load(Ordering::Acquire)
            {
                let Some(remaining) = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (next, timeout) = self
                    .signals
                    .space_cv
                    .wait_timeout(guard, remaining)
                    .expect("space cv");
                guard = next;
                if timeout.timed_out() {
                    break;
                }
            }
            drop(guard);
            if journal.available_bytes() >= needed {
                return Ok(());
            }
        }
        // Stop-the-world fallback (and the no-checkpointer contract).
        let _exclusive = self.checkpoint_gate.write();
        // A racing checkpoint may have freed the space while this thread
        // waited for the write lock.
        if journal.available_bytes() >= needed {
            return Ok(());
        }
        self.checkpoint_locked()?;
        self.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flags the checkpointer monitor to fire now.
    fn request_checkpoint(&self) {
        self.signals.requested.store(true, Ordering::Release);
        let _guard = self.signals.wake_lock.lock().expect("wake lock");
        self.signals.wake_cv.notify_all();
    }

    fn notify_space_freed(&self) {
        let _guard = self.signals.space_lock.lock().expect("space lock");
        self.signals.space_cv.notify_all();
    }

    /// Marks a checkpointer as attached; commits now treat a full journal
    /// as backpressure instead of checkpointing inline immediately.
    pub(crate) fn attach_checkpointer(&self) {
        self.signals
            .checkpointer_attached
            .store(true, Ordering::Release);
    }

    /// Detaches the checkpointer and releases any stalled committers into
    /// the inline-checkpoint path.
    pub(crate) fn detach_checkpointer(&self) {
        self.signals
            .checkpointer_attached
            .store(false, Ordering::Release);
        self.notify_space_freed();
        let _guard = self.signals.wake_lock.lock().expect("wake lock");
        self.signals.wake_cv.notify_all();
    }

    /// Parks the checkpointer monitor until a committer requests a drain
    /// (or `interval` elapses — the watermark/age poll cadence).
    pub(crate) fn wait_checkpoint_signal(&self, interval: Duration) {
        let guard = self.signals.wake_lock.lock().expect("wake lock");
        if self.signals.requested.load(Ordering::Acquire) {
            return;
        }
        let _ = self
            .signals
            .wake_cv
            .wait_timeout(guard, interval)
            .expect("wake cv");
    }

    /// Consumes a pending drain request, if any.
    pub(crate) fn take_checkpoint_request(&self) -> bool {
        self.signals.requested.swap(false, Ordering::AcqRel)
    }

    /// Folds one successful commit's stall time into the counters and the
    /// histogram.
    fn record_commit_stall(&self, stall_ns: u64) {
        let bucket = if stall_ns == 0 {
            0
        } else {
            1 + STALL_BUCKET_BOUNDS_NS
                .iter()
                .position(|&bound| stall_ns <= bound)
                .unwrap_or(STALL_BUCKET_BOUNDS_NS.len())
        };
        self.stall_histogram[bucket].fetch_add(1, Ordering::Relaxed);
        if stall_ns > 0 {
            self.commit_stalls.fetch_add(1, Ordering::Relaxed);
            self.commit_stall_ns.fetch_add(stall_ns, Ordering::Relaxed);
            self.max_commit_stall_ns
                .fetch_max(stall_ns, Ordering::Relaxed);
        }
    }
}

/// An open transaction; buffered operations are applied atomically (with
/// respect to crashes before commit) when [`commit`](Self::commit) is
/// called.
pub struct Transaction<'a> {
    txn_store: &'a TxnStore,
    id: u64,
    ops: Vec<TxnOp>,
    closed: bool,
}

impl Transaction<'_> {
    fn check_open(&self) -> Result<()> {
        if self.closed {
            Err(OsdError::TransactionClosed)
        } else {
            Ok(())
        }
    }

    /// Transaction id (for diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no operations have been buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Buffers a write.
    pub fn write(&mut self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::Write {
            oid,
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Buffers a mid-object insert.
    pub fn insert(&mut self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::Insert {
            oid,
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Buffers a range truncate.
    pub fn truncate_range(&mut self, oid: ObjectId, offset: u64, len: u64) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::TruncateRange { oid, offset, len });
        Ok(())
    }

    /// Logs, syncs and applies the buffered operations.
    ///
    /// The commit rides the store's group-commit pipeline: this call
    /// blocks until the transaction's journal frames — and those of every
    /// transaction batched with it — are flushed. Only then are the
    /// operations applied to the store.
    ///
    /// A commit rejected because the journal ring has filled up is
    /// treated as backpressure, never surfaced: with a background
    /// checkpointer attached the committer briefly blocks until the
    /// in-flight drain reclaims extents; without one it checkpoints
    /// inline (the seed behaviour) and retries. Callers only ever see
    /// [`StorageError::JournalFull`] for a transaction too large to fit
    /// even an *empty* ring. Stall time spent waiting for space is
    /// recorded in [`CheckpointStats`].
    pub fn commit(mut self) -> Result<()> {
        self.check_open()?;
        self.closed = true;
        let ts = self.txn_store;
        let capacity = ts.group.journal().capacity_bytes();
        let mut stall_ns = 0u64;
        loop {
            let gate = ts.checkpoint_gate.read();
            // Payloads are encoded per attempt so the common (no-retry)
            // path never pays a defensive clone.
            let payloads: Vec<Vec<u8>> = self.ops.iter().map(TxnOp::encode).collect();
            match ts.group.commit(self.id, payloads) {
                Ok(_) => {
                    // Apply while still holding the gate: a checkpoint
                    // must not reclaim the journal while this
                    // acknowledged transaction's redo is its only
                    // durable record.
                    for op in &self.ops {
                        op.apply(&ts.store)?;
                    }
                    drop(gate);
                    ts.record_commit_stall(stall_ns);
                    return Ok(());
                }
                Err(err @ StorageError::JournalFull { needed, .. }) => {
                    if needed as u64 > capacity {
                        // Too large for even an empty ring: no number of
                        // checkpoints can admit it.
                        return Err(err.into());
                    }
                    // The ring is full of *previous* transactions'
                    // frames. Drop the gate (a checkpoint needs it
                    // exclusively) and wait for space — reclaimed in the
                    // background if a checkpointer is running, inline
                    // otherwise — then retry.
                    drop(gate);
                    let stalled = Instant::now();
                    let waited = ts.wait_for_space(needed as u64);
                    stall_ns += stalled.elapsed().as_nanos() as u64;
                    waited?;
                }
                Err(err) => return Err(err.into()),
            }
        }
    }

    /// Discards the buffered operations, recording an abort in the journal.
    pub fn abort(mut self) -> Result<()> {
        self.check_open()?;
        self.closed = true;
        let journal = self.txn_store.group.journal();
        journal.append(self.id, RecordKind::Abort, b"")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use hfad_storage::MemDevice;

    fn txn_store() -> TxnStore {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        TxnStore::new(store).unwrap()
    }

    #[test]
    fn committed_transaction_applies() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"transactional hello").unwrap();
        txn.insert(oid, 13, b" brave").unwrap();
        txn.commit().unwrap();
        assert_eq!(
            ts.store().read(oid, 0, 100).unwrap(),
            b"transactional brave hello".to_vec()
        );
    }

    #[test]
    fn aborted_transaction_leaves_no_trace() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        ts.store().write(oid, 0, b"original").unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"clobbered").unwrap();
        txn.abort().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"original".to_vec());
        // Replay must not resurrect the aborted write either.
        ts.replay().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"original".to_vec());
    }

    #[test]
    fn replay_reapplies_committed_operations() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"abcdef").unwrap();
        txn.truncate_range(oid, 1, 2).unwrap();
        txn.commit().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"adef".to_vec());
        // Simulate the post-crash redo path: wipe the object, replay the log.
        ts.store().truncate(oid, 0).unwrap();
        let applied = ts.replay().unwrap();
        assert_eq!(applied, 2);
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"adef".to_vec());
    }

    #[test]
    fn checkpoint_empties_journal() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"x").unwrap();
        txn.commit().unwrap();
        ts.checkpoint().unwrap();
        assert_eq!(ts.replay().unwrap(), 0);
    }

    #[test]
    fn concurrent_batched_commits_all_apply_and_amortize_flushes() {
        let device = Arc::new(MemDevice::with_capacity(32 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 1024,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = Arc::new(
            TxnStore::with_config(
                Arc::clone(&store),
                hfad_storage::GroupCommitConfig::batched(16, std::time::Duration::from_micros(200)),
            )
            .unwrap(),
        );
        let threads = 4usize;
        let per_thread = 16usize;
        let oids: Vec<_> = (0..threads)
            .map(|_| ts.store().create_default(0).unwrap())
            .collect();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ts = Arc::clone(&ts);
                let oid = oids[t];
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let mut txn = ts.begin();
                        txn.write(oid, (i * 8) as u64, format!("w{t:02}{i:03}").as_bytes())
                            .unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (t, oid) in oids.iter().enumerate() {
            let last = format!("w{t:02}{:03}", per_thread - 1);
            let data = ts
                .store()
                .read(*oid, ((per_thread - 1) * 8) as u64, last.len() as u64)
                .unwrap();
            assert_eq!(data, last.as_bytes());
        }
        let stats = ts.group_commit_stats();
        assert_eq!(stats.commits, (threads * per_thread) as u64);
        assert!(stats.max_batch >= 1 && stats.max_batch <= 16);
        assert!(stats.flushes <= stats.commits);
        // Every acknowledged commit must be replayable from the journal.
        assert_eq!(
            ts.journal().committed_payloads().unwrap().len(),
            threads * per_thread
        );
    }

    #[test]
    fn unbatched_config_reproduces_sync_per_commit() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts =
            TxnStore::with_config(store, hfad_storage::GroupCommitConfig::unbatched()).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        for i in 0..4u64 {
            let mut txn = ts.begin();
            txn.write(oid, i * 4, b"abcd").unwrap();
            txn.commit().unwrap();
        }
        let stats = ts.group_commit_stats();
        assert_eq!(stats.commits, 4);
        assert_eq!(stats.flushes, 4);
        assert_eq!(stats.max_batch, 1);
    }

    #[test]
    fn oversized_transaction_fails_with_journal_full() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 3,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = TxnStore::new(store).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, &vec![0u8; 64 * 1024]).unwrap();
        let err = txn.commit().unwrap_err();
        assert!(matches!(
            err,
            OsdError::Storage(hfad_storage::StorageError::JournalFull { .. })
        ));
        // The failed commit must not have been applied to the store.
        assert_eq!(ts.store().len(oid).unwrap(), 0);
        // The journal region is still usable for transactions that fit.
        let mut txn = ts.begin();
        txn.write(oid, 0, b"fits").unwrap();
        txn.commit().unwrap();
        assert_eq!(ts.store().read(oid, 0, 4).unwrap(), b"fits".to_vec());
    }

    #[test]
    fn journal_full_triggers_auto_checkpoint_and_commit_succeeds() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    // Tiny ring: fills after a handful of commits.
                    journal_blocks: 3,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = TxnStore::new(store).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        // Far more commit bytes than the region holds: without
        // auto-checkpoint this loop would fail with JournalFull.
        for i in 0..64u64 {
            let mut txn = ts.begin();
            txn.write(oid, i * 128, &[i as u8; 128]).unwrap();
            txn.commit().unwrap();
        }
        assert!(
            ts.auto_checkpoints() >= 1,
            "the tiny journal must have forced at least one auto-checkpoint"
        );
        // Every commit was applied.
        for i in 0..64u64 {
            assert_eq!(
                ts.store().read(oid, i * 128, 128).unwrap(),
                vec![i as u8; 128],
                "commit {i}"
            );
        }
    }

    #[test]
    fn concurrent_commits_survive_auto_checkpoints() {
        let device = Arc::new(MemDevice::with_capacity(32 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 4,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = Arc::new(TxnStore::new(store).unwrap());
        let threads = 4usize;
        let per_thread = 32usize;
        let oids: Vec<_> = (0..threads)
            .map(|_| ts.store().create_default(0).unwrap())
            .collect();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ts = Arc::clone(&ts);
                let oid = oids[t];
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let mut txn = ts.begin();
                        txn.write(oid, (i * 64) as u64, &[(t * 16 + 1) as u8; 64])
                            .unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(ts.auto_checkpoints() >= 1);
        for (t, oid) in oids.iter().enumerate() {
            assert_eq!(
                ts.store().len(*oid).unwrap(),
                (per_thread * 64) as u64,
                "thread {t} lost commits"
            );
        }
    }

    #[test]
    fn store_without_journal_rejected() {
        let store = Arc::new(ObjectStore::in_memory(4 * 1024 * 1024).unwrap());
        assert!(TxnStore::new(store).is_err());
    }

    #[test]
    fn txn_op_round_trip() {
        for op in [
            TxnOp::Write {
                oid: ObjectId(3),
                offset: 10,
                data: b"abc".to_vec(),
            },
            TxnOp::Insert {
                oid: ObjectId(4),
                offset: 0,
                data: vec![],
            },
            TxnOp::TruncateRange {
                oid: ObjectId(5),
                offset: 100,
                len: 50,
            },
        ] {
            assert_eq!(TxnOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(TxnOp::decode(&[9u8; 30]).is_err());
        assert!(TxnOp::decode(&[1u8; 4]).is_err());
    }
}

//! Optional transactional wrapper over the object store.
//!
//! The paper: "In ZFS, the DMU is a transactional object store; in hFAD,
//! the OSD may be transactional, but this is an implementation decision,
//! not a requirement" (§3.3). [`TxnStore`] makes the decision configurable:
//! data operations are buffered in a [`Transaction`], logged to the
//! write-ahead journal at commit, synced, and only then applied to the
//! store. Experiment E6 ablates its cost against the plain store.
//!
//! The journal is intentionally a single serial log even though the store
//! underneath is sharded (see [`crate::store`]): commit ordering is a
//! durability property, not a namespace property, so transactions pay one
//! append stream while the applied operations still spread across the
//! store's shards. What *is* amortised is the flush: commits go through
//! the storage layer's [`GroupCommit`] pipeline, so concurrent
//! transactions share one contiguous journal append and one device sync
//! per batch (configure with [`TxnStore::with_config`]; a `max_batch` of
//! zero reproduces the sync-per-commit seed behaviour for the E8
//! ablation).
//!
//! The journal is circular, so sustained write traffic is a first-class
//! citizen: a full ring is **backpressure, not an error**. With a
//! [`crate::checkpoint::Checkpointer`] attached, checkpoints fire off
//! size/age watermarks and run concurrently with new admissions
//! ([`TxnStore::checkpoint_background`]); a committer that outruns the
//! drain briefly blocks until extents are reclaimed. Without one, a full
//! ring triggers the inline stop-the-world checkpoint, preserving the
//! seed contract. Either way `JournalFull` only reaches callers for a
//! transaction bigger than the empty ring. Stall time and checkpoint
//! counts are exposed via [`TxnStore::checkpoint_stats`], and experiment
//! E11 measures the steady-state difference between the two modes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::{Condvar, Mutex};

use hfad_storage::{
    GroupCommit, GroupCommitConfig, GroupCommitStats, Health, HealthState, Journal, RecordKind,
    StorageError,
};
use parking_lot::RwLock;

use crate::error::{OsdError, Result};
use crate::meta::ObjectMeta;
use crate::oid::ObjectId;
use crate::persist::{PersistCtx, StoreMeta};
use crate::store::{ObjectStore, StoreStats};

/// A logged, redo-only operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Overwrite/extend at an offset.
    Write {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Insert bytes into the middle of an object.
    Insert {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to insert.
        data: Vec<u8>,
    },
    /// Remove a byte range from an object.
    TruncateRange {
        /// Target object.
        oid: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Bytes to remove.
        len: u64,
    },
    /// Create an empty object under a pre-allocated id.
    ///
    /// The id is drawn from the store's allocator when the operation is
    /// buffered, so replaying the record recreates the *same* object; the
    /// apply is idempotent (an existing id is left untouched).
    Create {
        /// The pre-allocated object id.
        oid: ObjectId,
        /// Initial metadata.
        meta: ObjectMeta,
    },
    /// Delete an object and free its storage.
    Delete {
        /// Target object.
        oid: ObjectId,
    },
}

impl TxnOp {
    /// Serialises the operation for the journal.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            TxnOp::Write { oid, offset, data } => {
                out.push(1);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(data);
            }
            TxnOp::Insert { oid, offset, data } => {
                out.push(2);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(data);
            }
            TxnOp::TruncateRange { oid, offset, len } => {
                out.push(3);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            TxnOp::Create { oid, meta } => {
                out.push(4);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
                out.extend_from_slice(&meta.encode());
            }
            TxnOp::Delete { oid } => {
                out.push(5);
                out.extend_from_slice(&oid.as_u64().to_le_bytes());
            }
        }
        out
    }

    /// Deserialises an operation written by [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 9 {
            return Err(OsdError::Corrupt("transaction record too short".into()));
        }
        let oid = ObjectId(u64::from_le_bytes(buf[1..9].try_into().expect("u64")));
        let offset_at = |at: usize| -> Result<u64> {
            buf.get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("u64")))
                .ok_or_else(|| OsdError::Corrupt("transaction record too short".into()))
        };
        match buf[0] {
            1 => Ok(TxnOp::Write {
                oid,
                offset: offset_at(9)?,
                data: buf[17..].to_vec(),
            }),
            2 => Ok(TxnOp::Insert {
                oid,
                offset: offset_at(9)?,
                data: buf[17..].to_vec(),
            }),
            3 => Ok(TxnOp::TruncateRange {
                oid,
                offset: offset_at(9)?,
                len: offset_at(17)?,
            }),
            4 => Ok(TxnOp::Create {
                oid,
                meta: ObjectMeta::decode(&buf[9..])?,
            }),
            5 => Ok(TxnOp::Delete { oid }),
            other => Err(OsdError::Corrupt(format!(
                "unknown transaction opcode {other}"
            ))),
        }
    }

    fn apply(&self, store: &ObjectStore) -> Result<()> {
        match self {
            TxnOp::Write { oid, offset, data } => store.write(*oid, *offset, data),
            TxnOp::Insert { oid, offset, data } => store.insert(*oid, *offset, data),
            TxnOp::TruncateRange { oid, offset, len } => store.truncate_range(*oid, *offset, *len),
            TxnOp::Create { oid, meta } => store.create_object_with_id(*oid, *meta),
            TxnOp::Delete { oid } => match store.delete(*oid) {
                // Redo must be idempotent: the object may already be gone
                // (applied before a crash, then replayed).
                Err(OsdError::NoSuchObject(_)) => Ok(()),
                other => other,
            },
        }
    }
}

/// Upper bounds of the commit-stall histogram buckets, in nanoseconds.
/// Bucket 0 is "no stall"; the last bucket is everything above the final
/// bound. Chosen around the E8/E11 flush-delay fixtures: a stop-the-world
/// checkpoint lands in the top buckets, watermark backpressure in the
/// middle ones.
pub const STALL_BUCKET_BOUNDS_NS: [u64; 4] = [100_000, 500_000, 2_000_000, 10_000_000];

/// Number of commit-stall histogram buckets.
pub const STALL_BUCKETS: usize = STALL_BUCKET_BOUNDS_NS.len() + 2;

/// Default patience of a committer waiting on the background
/// checkpointer to free journal space before giving up and checkpointing
/// inline itself. The effective value auto-scales with the journal
/// device's measured flush cost (see
/// [`TxnStore::backpressure_patience`]); an in-memory device keeps
/// exactly this floor.
pub const DEFAULT_BACKPRESSURE_PATIENCE: Duration = Duration::from_millis(200);

/// Flush-cost multiple used when auto-scaling backpressure patience: a
/// background checkpoint is a bounded burst of device flushes, so giving
/// the checkpointer ~this many flush-times before a committer falls back
/// to stop-the-world keeps slow-fsync devices (a `FileDevice` on real
/// disk) from firing the inline fallback spuriously.
const PATIENCE_FLUSH_MULTIPLE: u32 = 50;

/// Ceiling on auto-scaled patience: a pathologically slow device must
/// not make a starved committer wait unboundedly before helping itself.
const MAX_AUTO_PATIENCE: Duration = Duration::from_secs(5);

/// Checkpoint and commit-stall counters for one [`TxnStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints begun (inline and background).
    pub checkpoints_started: u64,
    /// Checkpoints that ran to completion.
    pub checkpoints_completed: u64,
    /// Inline checkpoints forced by a full journal on the commit path
    /// (the stop-the-world fallback when no checkpointer is attached or
    /// backpressure patience runs out).
    pub auto_checkpoints: u64,
    /// Commits that stalled waiting for journal space.
    pub commit_stalls: u64,
    /// Total nanoseconds commits spent stalled on journal space.
    pub commit_stall_ns: u64,
    /// Longest single commit stall, in nanoseconds.
    pub max_commit_stall_ns: u64,
    /// Per-commit stall histogram: bucket 0 is stall-free commits, then
    /// one bucket per bound in [`STALL_BUCKET_BOUNDS_NS`], then an
    /// overflow bucket. Every successful commit lands in exactly one.
    pub stall_histogram: [u64; STALL_BUCKETS],
}

/// One stats snapshot covering the whole transactional stack: the store
/// (objects, device counters, allocator, block cache), the group-commit
/// pipeline and the checkpoint/stall counters.
#[derive(Debug, Clone)]
pub struct TxnStoreStats {
    /// The wrapped store's snapshot.
    pub store: StoreStats,
    /// Commit/batch/flush counters from the group-commit pipeline.
    pub group_commit: GroupCommitStats,
    /// Checkpoint and commit-stall counters.
    pub checkpoint: CheckpointStats,
}

/// The condvar plumbing between committers and the background
/// checkpointer.
struct CheckpointSignals {
    /// True while a [`crate::checkpoint::Checkpointer`] is attached; the
    /// commit path only waits on backpressure when someone is draining.
    checkpointer_attached: AtomicBool,
    /// Set by a starved committer; cleared when the monitor picks it up.
    requested: AtomicBool,
    /// Wakes the checkpointer monitor (request or shutdown).
    wake_lock: Mutex<()>,
    wake_cv: Condvar,
    /// Wakes committers stalled on journal space after a reclaim.
    space_lock: Mutex<()>,
    space_cv: Condvar,
}

/// A transactional facade over an [`ObjectStore`].
pub struct TxnStore {
    store: Arc<ObjectStore>,
    group: GroupCommit<Arc<dyn hfad_storage::BlockDevice>>,
    next_txn: AtomicU64,
    /// Excludes checkpoints from in-flight commits: a committing
    /// transaction holds a read lock from journal append through apply, a
    /// checkpoint holds the write lock, so the journal's live extent is
    /// only ever reclaimed when no acknowledged transaction is still
    /// waiting to be applied.
    checkpoint_gate: RwLock<()>,
    auto_checkpoints: AtomicU64,
    checkpoints_started: AtomicU64,
    checkpoints_completed: AtomicU64,
    commit_stalls: AtomicU64,
    commit_stall_ns: AtomicU64,
    max_commit_stall_ns: AtomicU64,
    stall_histogram: [AtomicU64; STALL_BUCKETS],
    /// Nanoseconds a committer blocked on a full journal waits for the
    /// background checkpointer before checkpointing inline itself.
    backpressure_patience_ns: AtomicU64,
    signals: CheckpointSignals,
    /// The store-wide health machine: the commit path, the inline
    /// checkpoint fallback and the attached [`crate::checkpoint::
    /// Checkpointer`] all report into it, and the commit path gates on
    /// it once degraded to read-only.
    health: Arc<HealthState>,
}

impl TxnStore {
    /// Wraps `store` with the default group-commit policy (batching on,
    /// zero leader wait: lone committers flush immediately, concurrent
    /// committers batch naturally). The journal is placed in the region
    /// the store's superblock reserved; the store must have been created
    /// with `journal_blocks > 0`.
    pub fn new(store: Arc<ObjectStore>) -> Result<Self> {
        Self::with_config(store, GroupCommitConfig::default())
    }

    /// Wraps `store` with an explicit group-commit policy.
    /// `GroupCommitConfig::unbatched()` restores sync-per-commit.
    pub fn with_config(store: Arc<ObjectStore>, config: GroupCommitConfig) -> Result<Self> {
        Self::with_config_and_health(store, config, Arc::new(HealthState::new()))
    }

    /// Like [`with_config`](Self::with_config), but reporting into a
    /// caller-supplied health machine — the assembled stack shares one
    /// [`HealthState`] across the store and every service above it.
    pub fn with_config_and_health(
        store: Arc<ObjectStore>,
        config: GroupCommitConfig,
        health: Arc<HealthState>,
    ) -> Result<Self> {
        let sb = store.superblock();
        if sb.journal_blocks == 0 {
            return Err(OsdError::Corrupt(
                "store was created without a journal region".to_string(),
            ));
        }
        // In persistent mode the journal must live on the *raw* device:
        // routing appends through the retain-dirty cache would leave
        // commit records as dirty frames instead of durable bytes.
        let journal_device: Arc<dyn hfad_storage::BlockDevice> = match store.persist() {
            Some(p) => Arc::clone(&p.raw),
            None => Arc::clone(&store.context().device),
        };
        // Auto-scale backpressure patience from one measured flush: the
        // stop-the-world fallback should only fire when the checkpointer
        // is genuinely wedged, not merely paying a slow device's fsync a
        // few dozen times. A memory-speed flush keeps the 200 ms floor.
        let patience = {
            let t0 = Instant::now();
            journal_device.flush()?;
            (t0.elapsed() * PATIENCE_FLUSH_MULTIPLE)
                .clamp(DEFAULT_BACKPRESSURE_PATIENCE, MAX_AUTO_PATIENCE)
        };
        let journal = Journal::new(journal_device, sb.journal_start, sb.journal_blocks)?;
        Ok(TxnStore {
            store,
            group: GroupCommit::new(journal, config),
            next_txn: AtomicU64::new(1),
            checkpoint_gate: RwLock::new(()),
            auto_checkpoints: AtomicU64::new(0),
            checkpoints_started: AtomicU64::new(0),
            checkpoints_completed: AtomicU64::new(0),
            commit_stalls: AtomicU64::new(0),
            commit_stall_ns: AtomicU64::new(0),
            max_commit_stall_ns: AtomicU64::new(0),
            stall_histogram: Default::default(),
            backpressure_patience_ns: AtomicU64::new(patience.as_nanos() as u64),
            signals: CheckpointSignals {
                checkpointer_attached: AtomicBool::new(false),
                requested: AtomicBool::new(false),
                wake_lock: Mutex::new(()),
                wake_cv: Condvar::new(),
                space_lock: Mutex::new(()),
                space_cv: Condvar::new(),
            },
            health,
        })
    }

    /// The store's current health.
    pub fn health(&self) -> Health {
        self.health.health()
    }

    /// The shared health machine (for services reporting in and stacks
    /// sharing one state across layers).
    pub fn health_state(&self) -> Arc<HealthState> {
        Arc::clone(&self.health)
    }

    /// Ratchets the store to read-only after a permanent write-path
    /// failure (or a transient one that outlived every retry budget):
    /// in-memory and recovered state keep serving reads, new commits are
    /// rejected with [`StorageError::ReadOnly`].
    fn note_write_path_failure(&self, what: &str, err: &OsdError) {
        if self.health.read_only(&format!("{what}: {err}")) {
            // Stalled committers must re-check health, not wait for
            // journal space that will never be reclaimed.
            self.notify_space_freed();
        }
    }

    /// Entry point for the attached [`crate::checkpoint::Checkpointer`]
    /// to report an unrecoverable drain failure; same read-only ratchet
    /// and space-waiter wakeup as the commit path's own failures.
    pub(crate) fn report_checkpoint_failure(&self, reason: &str) {
        if self.health.read_only(reason) {
            self.notify_space_freed();
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// How long a committer blocked on a full journal waits for the
    /// background checkpointer to reclaim space before falling back to an
    /// inline stop-the-world checkpoint. Defaults to ~50× the measured
    /// flush cost of the journal device, floored at
    /// [`DEFAULT_BACKPRESSURE_PATIENCE`] (the exact value an in-memory
    /// device gets) and capped at 5 s.
    pub fn backpressure_patience(&self) -> Duration {
        Duration::from_nanos(self.backpressure_patience_ns.load(Ordering::Relaxed))
    }

    /// Overrides the auto-scaled backpressure patience.
    pub fn set_backpressure_patience(&self, patience: Duration) {
        self.backpressure_patience_ns
            .store(patience.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The underlying journal (recovery scans, tests).
    pub fn journal(&self) -> &Journal<Arc<dyn hfad_storage::BlockDevice>> {
        self.group.journal()
    }

    /// Commit/batch/flush counters from the group-commit pipeline.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.group.stats()
    }

    /// Begins a new transaction.
    pub fn begin(&self) -> Transaction<'_> {
        Transaction {
            txn_store: self,
            id: self.next_txn.fetch_add(1, Ordering::Relaxed),
            ops: Vec::new(),
            closed: false,
        }
    }

    /// Re-applies every committed transaction found in the journal to the
    /// store (idempotent for redo-only operations on fresh stores).
    pub fn replay(&self) -> Result<u64> {
        let mut applied = 0;
        for (_txn, payloads) in self.group.journal().committed_payloads()? {
            for payload in payloads {
                TxnOp::decode(&payload)?.apply(&self.store)?;
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// A shared handle to the wrapped store.
    pub fn shared_store(&self) -> Arc<ObjectStore> {
        Arc::clone(&self.store)
    }

    /// Raises the next transaction id to at least `floor` (recovery:
    /// replayed ids must never be reissued).
    pub(crate) fn floor_next_txn(&self, floor: u64) {
        self.next_txn.fetch_max(floor.max(1), Ordering::Relaxed);
    }

    /// Replays journalled transactions whose commit landed at or after
    /// `floor`, in journal order, returning the number of applied
    /// operations. Used by the persistent open path: commits below the
    /// floor are already in the checkpointed home pages.
    ///
    /// Data records are buffered per transaction and applied only on
    /// `Commit` (an `Abort` or a missing commit — the crash tail —
    /// discards them). The floor test on the *commit* record is sound
    /// because floors are taken under the exclusive gate: no transaction
    /// straddles a checkpoint, so a commit at or above the floor implies
    /// all of its records are too.
    pub(crate) fn replay_from_floor(&self, floor: u64) -> Result<u64> {
        let mut pending: std::collections::HashMap<u64, Vec<TxnOp>> =
            std::collections::HashMap::new();
        let mut applied = 0u64;
        let mut max_txn = 0u64;
        for rec in self.group.journal().recover()? {
            max_txn = max_txn.max(rec.txn_id);
            match rec.kind {
                RecordKind::Begin => {
                    pending.insert(rec.txn_id, Vec::new());
                }
                RecordKind::Data => {
                    pending
                        .entry(rec.txn_id)
                        .or_default()
                        .push(TxnOp::decode(&rec.payload)?);
                }
                RecordKind::Abort => {
                    pending.remove(&rec.txn_id);
                }
                RecordKind::Commit => {
                    let ops = pending.remove(&rec.txn_id).unwrap_or_default();
                    if rec.seq < floor {
                        continue;
                    }
                    for op in ops {
                        if let TxnOp::Create { oid, .. } = &op {
                            // The id came from a range claimed after the
                            // checkpoint: floor the allocator above it so
                            // it is never reissued.
                            self.store.oid_alloc().ensure_floor(oid.as_u64() + 1);
                        }
                        match op.apply(&self.store) {
                            Ok(()) => applied += 1,
                            // Defensive: a redo against an object a later
                            // replayed delete removes is skippable.
                            Err(OsdError::NoSuchObject(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }
        self.floor_next_txn(max_txn + 1);
        Ok(applied)
    }

    /// Truncates the journal after a checkpoint, stop-the-world style.
    ///
    /// Waits for every in-flight commit to finish applying, flushes the
    /// store's device so the applied state the journal made redundant is
    /// itself durable, and only then reclaims the whole log. New commits
    /// are held out for the full duration; prefer
    /// [`checkpoint_background`](Self::checkpoint_background) on hot
    /// paths.
    pub fn checkpoint(&self) -> Result<()> {
        let _exclusive = self.checkpoint_gate.write();
        self.checkpoint_locked()
    }

    /// The checkpoint body; caller holds the exclusive gate.
    fn checkpoint_locked(&self) -> Result<()> {
        if let Some(p) = self.store.persist() {
            let p = Arc::clone(p);
            return self.checkpoint_persistent_locked(&p);
        }
        self.checkpoints_started.fetch_add(1, Ordering::Relaxed);
        self.store.context().device.flush()?;
        self.group.journal().reset()?;
        self.checkpoints_completed.fetch_add(1, Ordering::Relaxed);
        self.notify_space_freed();
        Ok(())
    }

    /// The persistent (file-backed) checkpoint body; caller holds the
    /// exclusive gate, so no transaction is mid-append or mid-apply.
    ///
    /// Protocol (see [`crate::persist`] for the crash-window analysis):
    /// collect the dirty page set, snapshot the store metadata with the
    /// journal's current sequence as the next replay floor, stage pages +
    /// metadata as **one** doublewrite batch (fsynced before and after the
    /// batch header), install them at their home addresses, then reset the
    /// journal — whose durable header write also makes the installs
    /// durable. A crash before the reset recovers by re-installing the
    /// staged batch; a crash after it finds a clean journal and the new
    /// metadata epoch. Only then are the staged frames marked clean in the
    /// cache (skipping any re-dirtied meanwhile — impossible under the
    /// gate, but cheap to keep exact) and the staging region cleared so
    /// readers can tell a clean store from one needing recovery.
    fn checkpoint_persistent_locked(&self, p: &Arc<PersistCtx>) -> Result<()> {
        self.checkpoints_started.fetch_add(1, Ordering::Relaxed);
        let cache = self.store.block_cache().ok_or_else(|| {
            OsdError::Corrupt("persistent store is missing its block cache".into())
        })?;
        let dirty = cache.collect_dirty();
        let floor = self.group.journal().mark().seq;
        let epoch = p.epoch.load(Ordering::Acquire);
        let meta = StoreMeta {
            epoch,
            replay_floor: floor,
            next_txn: self.next_txn.load(Ordering::Relaxed),
            next_oid: self.store.oid_alloc().range_head(),
            alloc: self.store.context().allocator.snapshot(),
            shards: self.store.table_state(),
        };
        let mut batch = dirty.clone();
        batch.extend(p.meta_frames(&meta)?);
        if batch.len() > p.dw.capacity() {
            // Never silently split the batch: a partial install is not
            // atomic. The commit-path trigger checkpoints at a quarter of
            // this capacity, so hitting the ceiling means the thresholds
            // are misconfigured — fail loudly rather than corrupt.
            return Err(OsdError::Corrupt(format!(
                "checkpoint batch of {} pages exceeds the doublewrite capacity of {}; \
                 recreate the store with a larger doublewrite region",
                batch.len(),
                p.dw.capacity()
            )));
        }
        p.dw.stage(epoch, &batch)?;
        p.dw.install(&batch)?;
        self.group.journal().reset()?;
        p.dw.clear()?;
        for (block, data) in &dirty {
            cache.mark_clean_if_unchanged(*block, data);
        }
        p.epoch.store(epoch + 1, Ordering::Release);
        p.replay_floor.store(floor, Ordering::Release);
        self.checkpoints_completed.fetch_add(1, Ordering::Relaxed);
        self.notify_space_freed();
        Ok(())
    }

    /// Commit-path checkpoint trigger for persistent stores: once the
    /// dirty page set reaches the persistence context's threshold (a
    /// quarter of the doublewrite capacity), drain it — via the attached
    /// checkpointer when one is running, inline otherwise — long before
    /// a checkpoint could outgrow the staging region.
    fn maybe_persistent_checkpoint(&self) -> Result<()> {
        let Some(p) = self.store.persist() else {
            return Ok(());
        };
        let threshold = p.checkpoint_threshold();
        let Some(cache) = self.store.block_cache() else {
            return Ok(());
        };
        if cache.dirty_blocks() < threshold {
            return Ok(());
        }
        if self.signals.checkpointer_attached.load(Ordering::Acquire) {
            self.request_checkpoint();
            return Ok(());
        }
        let _exclusive = self.checkpoint_gate.write();
        // A racing committer may have checkpointed while this thread
        // waited for the gate.
        if cache.dirty_blocks() < threshold {
            return Ok(());
        }
        self.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_with_retry()
    }

    /// Checkpoints while admitting new commits concurrently.
    ///
    /// The sequence is: snapshot the journal head, then briefly acquire
    /// (and immediately release) the exclusive gate — a barrier that
    /// waits only for commits already acknowledged to finish applying,
    /// bounded by in-memory apply time, never by device flushes — then
    /// flush the store's device and reclaim the log up to the snapshot.
    /// Commits appending after the snapshot sit past the mark and stay
    /// live, so the journal keeps admitting batches while the flush (the
    /// expensive part) runs.
    ///
    /// A crash between the flush and the tail advance leaves the old
    /// tail in effect: recovery replays extra already-applied
    /// transactions, which is safe for redo-only records.
    pub fn checkpoint_background(&self) -> Result<()> {
        if self.store.persist().is_some() {
            // Persistent mode cannot use the mark-based overlap: the
            // reclaimed journal extent is only redundant once the dirty
            // pages it covers are installed, and retain-dirty pages are
            // only installed by the doublewrite protocol — which needs
            // the gate held across collect/stage/install anyway. Take the
            // sharp (gate-held) checkpoint instead; commits admitted
            // after the gate drops simply journal into the emptied ring.
            let _exclusive = self.checkpoint_gate.write();
            return self.checkpoint_locked();
        }
        self.checkpoints_started.fetch_add(1, Ordering::Relaxed);
        let mark = self.group.journal().mark();
        // Every commit covered by the mark acquired the read gate before
        // appending and releases it after applying; draining the gate
        // once means everything up to the mark is applied in memory.
        drop(self.checkpoint_gate.write());
        self.store.context().device.flush()?;
        self.group.journal().reclaim_to(mark)?;
        self.checkpoints_completed.fetch_add(1, Ordering::Relaxed);
        self.notify_space_freed();
        Ok(())
    }

    /// Number of inline checkpoints forced by a full journal on the
    /// commit path (see [`Transaction::commit`]).
    pub fn auto_checkpoints(&self) -> u64 {
        self.auto_checkpoints.load(Ordering::Relaxed)
    }

    /// Checkpoint and commit-stall counters.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        let mut histogram = [0u64; STALL_BUCKETS];
        for (slot, counter) in histogram.iter_mut().zip(&self.stall_histogram) {
            *slot = counter.load(Ordering::Relaxed);
        }
        CheckpointStats {
            checkpoints_started: self.checkpoints_started.load(Ordering::Relaxed),
            checkpoints_completed: self.checkpoints_completed.load(Ordering::Relaxed),
            auto_checkpoints: self.auto_checkpoints.load(Ordering::Relaxed),
            commit_stalls: self.commit_stalls.load(Ordering::Relaxed),
            commit_stall_ns: self.commit_stall_ns.load(Ordering::Relaxed),
            max_commit_stall_ns: self.max_commit_stall_ns.load(Ordering::Relaxed),
            stall_histogram: histogram,
        }
    }

    /// One snapshot covering the whole stack: store, group commit and
    /// checkpointing.
    pub fn stats(&self) -> TxnStoreStats {
        TxnStoreStats {
            store: self.store.stats(),
            group_commit: self.group_commit_stats(),
            checkpoint: self.checkpoint_stats(),
        }
    }

    // ------------------------------------------------------------------
    // Backpressure plumbing between committers and the checkpointer.
    // ------------------------------------------------------------------

    /// Blocks until the journal has `needed` free bytes, checkpointing as
    /// required. With a checkpointer attached this is backpressure: ask
    /// it to drain, wait for reclaimed space, and only checkpoint inline
    /// (stop-the-world) if patience runs out. Without one, it is the
    /// seed-equivalent inline auto-checkpoint.
    fn wait_for_space(&self, needed: u64) -> Result<()> {
        let journal = self.group.journal();
        if self.signals.checkpointer_attached.load(Ordering::Acquire) {
            self.request_checkpoint();
            let deadline = Instant::now() + self.backpressure_patience();
            let mut guard = self
                .signals
                .space_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            while journal.available_bytes() < needed
                && self.signals.checkpointer_attached.load(Ordering::Acquire)
                && self.health.health().is_writable()
            {
                let Some(remaining) = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (next, timeout) = self
                    .signals
                    .space_cv
                    .wait_timeout(guard, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                guard = next;
                if timeout.timed_out() {
                    break;
                }
            }
            drop(guard);
            // A checkpointer that degraded the store while this thread
            // waited woke it via `note_write_path_failure`; surface the
            // typed error instead of the stop-the-world fallback.
            self.health.check_writable().map_err(OsdError::from)?;
            if journal.available_bytes() >= needed {
                return Ok(());
            }
        }
        // Stop-the-world fallback (and the no-checkpointer contract).
        let _exclusive = self.checkpoint_gate.write();
        // A racing checkpoint may have freed the space while this thread
        // waited for the write lock.
        if journal.available_bytes() >= needed {
            return Ok(());
        }
        self.checkpoint_with_retry()?;
        self.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Runs the gate-held checkpoint, absorbing transient device faults
    /// with the group-commit retry budget. A permanent failure (or an
    /// exhausted budget) degrades the store to read-only: the journal
    /// can no longer be reclaimed, so accepting further writes would
    /// only wedge them behind a full ring.
    fn checkpoint_with_retry(&self) -> Result<()> {
        let policy = self.group.config().retry;
        let mut attempt = 1u32;
        loop {
            match self.checkpoint_locked() {
                Ok(()) => return Ok(()),
                Err(err) if err.is_transient() && attempt < policy.max_attempts => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                Err(err) => {
                    self.note_write_path_failure("checkpoint failed", &err);
                    return Err(err);
                }
            }
        }
    }

    /// Flags the checkpointer monitor to fire now.
    fn request_checkpoint(&self) {
        self.signals.requested.store(true, Ordering::Release);
        let _guard = self
            .signals
            .wake_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        self.signals.wake_cv.notify_all();
    }

    fn notify_space_freed(&self) {
        let _guard = self
            .signals
            .space_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        self.signals.space_cv.notify_all();
    }

    /// Marks a checkpointer as attached; commits now treat a full journal
    /// as backpressure instead of checkpointing inline immediately.
    pub(crate) fn attach_checkpointer(&self) {
        self.signals
            .checkpointer_attached
            .store(true, Ordering::Release);
    }

    /// Detaches the checkpointer and releases any stalled committers into
    /// the inline-checkpoint path.
    pub(crate) fn detach_checkpointer(&self) {
        self.signals
            .checkpointer_attached
            .store(false, Ordering::Release);
        self.notify_space_freed();
        let _guard = self
            .signals
            .wake_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        self.signals.wake_cv.notify_all();
    }

    /// Parks the checkpointer monitor until a committer requests a drain
    /// (or `interval` elapses — the watermark/age poll cadence).
    pub(crate) fn wait_checkpoint_signal(&self, interval: Duration) {
        let guard = self
            .signals
            .wake_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if self.signals.requested.load(Ordering::Acquire) {
            return;
        }
        let _ = self
            .signals
            .wake_cv
            .wait_timeout(guard, interval)
            .unwrap_or_else(|e| e.into_inner());
    }

    /// Consumes a pending drain request, if any.
    pub(crate) fn take_checkpoint_request(&self) -> bool {
        self.signals.requested.swap(false, Ordering::AcqRel)
    }

    /// Folds one successful commit's stall time into the counters and the
    /// histogram.
    fn record_commit_stall(&self, stall_ns: u64) {
        let bucket = if stall_ns == 0 {
            0
        } else {
            1 + STALL_BUCKET_BOUNDS_NS
                .iter()
                .position(|&bound| stall_ns <= bound)
                .unwrap_or(STALL_BUCKET_BOUNDS_NS.len())
        };
        self.stall_histogram[bucket].fetch_add(1, Ordering::Relaxed);
        if stall_ns > 0 {
            self.commit_stalls.fetch_add(1, Ordering::Relaxed);
            self.commit_stall_ns.fetch_add(stall_ns, Ordering::Relaxed);
            self.max_commit_stall_ns
                .fetch_max(stall_ns, Ordering::Relaxed);
        }
    }
}

impl Drop for TxnStore {
    /// Best-effort final checkpoint for persistent stores: a cleanly
    /// dropped writer leaves an empty journal and a cleared staging
    /// region, so the next open (writer *or* reader) needs no recovery.
    /// A kill -9 skips this — that is exactly what the recovery path in
    /// [`crate::persist::open_file`] is for.
    fn drop(&mut self) {
        if self.store.persist().is_some() {
            let _ = self.checkpoint();
        }
    }
}

/// An open transaction; buffered operations are applied atomically (with
/// respect to crashes before commit) when [`commit`](Self::commit) is
/// called.
pub struct Transaction<'a> {
    txn_store: &'a TxnStore,
    id: u64,
    ops: Vec<TxnOp>,
    closed: bool,
}

impl Transaction<'_> {
    fn check_open(&self) -> Result<()> {
        if self.closed {
            Err(OsdError::TransactionClosed)
        } else {
            Ok(())
        }
    }

    /// Transaction id (for diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no operations have been buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Buffers a write.
    pub fn write(&mut self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::Write {
            oid,
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Buffers a mid-object insert.
    pub fn insert(&mut self, oid: ObjectId, offset: u64, data: &[u8]) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::Insert {
            oid,
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Buffers a range truncate.
    pub fn truncate_range(&mut self, oid: ObjectId, offset: u64, len: u64) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::TruncateRange { oid, offset, len });
        Ok(())
    }

    /// Buffers an object create, returning the id the object will have.
    ///
    /// The id is allocated now (ids are never reused, so an aborted
    /// transaction simply strands it) and journalled with the create, so
    /// crash recovery recreates the object under the same id and later
    /// records in the same transaction can target it.
    pub fn create(&mut self, meta: ObjectMeta) -> Result<ObjectId> {
        self.check_open()?;
        let oid = self.txn_store.store.allocate_oid();
        self.ops.push(TxnOp::Create { oid, meta });
        Ok(oid)
    }

    /// Buffers an object delete.
    pub fn delete(&mut self, oid: ObjectId) -> Result<()> {
        self.check_open()?;
        self.ops.push(TxnOp::Delete { oid });
        Ok(())
    }

    /// Logs, syncs and applies the buffered operations.
    ///
    /// The commit rides the store's group-commit pipeline: this call
    /// blocks until the transaction's journal frames — and those of every
    /// transaction batched with it — are flushed. Only then are the
    /// operations applied to the store.
    ///
    /// A commit rejected because the journal ring has filled up is
    /// treated as backpressure, never surfaced: with a background
    /// checkpointer attached the committer briefly blocks until the
    /// in-flight drain reclaims extents; without one it checkpoints
    /// inline (the seed behaviour) and retries. Callers only ever see
    /// [`StorageError::JournalFull`] for a transaction too large to fit
    /// even an *empty* ring. Stall time spent waiting for space is
    /// recorded in [`CheckpointStats`].
    pub fn commit(mut self) -> Result<()> {
        self.check_open()?;
        self.closed = true;
        let ts = self.txn_store;
        let capacity = ts.group.journal().capacity_bytes();
        let mut stall_ns = 0u64;
        loop {
            // A store degraded to read-only rejects the commit with the
            // typed error before touching the journal.
            ts.health.check_writable().map_err(OsdError::from)?;
            let gate = ts.checkpoint_gate.read();
            // Payloads are encoded per attempt so the common (no-retry)
            // path never pays a defensive clone.
            let payloads: Vec<Vec<u8>> = self.ops.iter().map(TxnOp::encode).collect();
            match ts.group.commit(self.id, payloads) {
                Ok(_) => {
                    // Apply while still holding the gate: a checkpoint
                    // must not reclaim the journal while this
                    // acknowledged transaction's redo is its only
                    // durable record.
                    for op in &self.ops {
                        if let Err(e) = op.apply(&ts.store) {
                            // The commit is durable but the in-memory
                            // state no longer reflects it: nothing below
                            // can be trusted until a reopen replays the
                            // journal.
                            ts.health.fail_stop(&format!(
                                "acked commit {} failed to apply: {e}",
                                self.id
                            ));
                            return Err(e);
                        }
                    }
                    drop(gate);
                    ts.record_commit_stall(stall_ns);
                    // Persistent stores: keep the dirty page set well
                    // inside the doublewrite staging capacity.
                    ts.maybe_persistent_checkpoint()?;
                    return Ok(());
                }
                Err(err @ StorageError::JournalFull { needed, .. }) => {
                    if needed as u64 > capacity {
                        // Too large for even an empty ring: no number of
                        // checkpoints can admit it.
                        return Err(err.into());
                    }
                    // The ring is full of *previous* transactions'
                    // frames. Drop the gate (a checkpoint needs it
                    // exclusively) and wait for space — reclaimed in the
                    // background if a checkpointer is running, inline
                    // otherwise — then retry.
                    drop(gate);
                    let stalled = Instant::now();
                    let waited = ts.wait_for_space(needed as u64);
                    stall_ns += stalled.elapsed().as_nanos() as u64;
                    waited?;
                }
                Err(err) => {
                    // The group-commit leader already spent its retry
                    // budget on transient faults; whatever reaches here
                    // is a permanent journal-write failure.
                    drop(gate);
                    let err: OsdError = err.into();
                    ts.note_write_path_failure("journal write failed", &err);
                    return Err(err);
                }
            }
        }
    }

    /// Discards the buffered operations, recording an abort in the journal.
    pub fn abort(mut self) -> Result<()> {
        self.check_open()?;
        self.closed = true;
        let journal = self.txn_store.group.journal();
        journal.append(self.id, RecordKind::Abort, b"")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use hfad_storage::MemDevice;

    fn txn_store() -> TxnStore {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        TxnStore::new(store).unwrap()
    }

    #[test]
    fn committed_transaction_applies() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"transactional hello").unwrap();
        txn.insert(oid, 13, b" brave").unwrap();
        txn.commit().unwrap();
        assert_eq!(
            ts.store().read(oid, 0, 100).unwrap(),
            b"transactional brave hello".to_vec()
        );
    }

    #[test]
    fn aborted_transaction_leaves_no_trace() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        ts.store().write(oid, 0, b"original").unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"clobbered").unwrap();
        txn.abort().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"original".to_vec());
        // Replay must not resurrect the aborted write either.
        ts.replay().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"original".to_vec());
    }

    #[test]
    fn replay_reapplies_committed_operations() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"abcdef").unwrap();
        txn.truncate_range(oid, 1, 2).unwrap();
        txn.commit().unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"adef".to_vec());
        // Simulate the post-crash redo path: wipe the object, replay the log.
        ts.store().truncate(oid, 0).unwrap();
        let applied = ts.replay().unwrap();
        assert_eq!(applied, 2);
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"adef".to_vec());
    }

    #[test]
    fn checkpoint_empties_journal() {
        let ts = txn_store();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, b"x").unwrap();
        txn.commit().unwrap();
        ts.checkpoint().unwrap();
        assert_eq!(ts.replay().unwrap(), 0);
    }

    #[test]
    fn backpressure_patience_scales_with_device_flush_cost() {
        // Memory-speed flush: patience stays at the 200 ms floor.
        let ts = txn_store();
        assert_eq!(ts.backpressure_patience(), DEFAULT_BACKPRESSURE_PATIENCE);
        // A slow-fsync device (10 ms per flush) must grow patience well
        // beyond the floor, or the stop-the-world fallback fires while
        // the background checkpointer is still mid-drain.
        let device = Arc::new(hfad_storage::FlushDelayDevice::new(
            MemDevice::with_capacity(16 * 1024 * 1024),
            Duration::from_millis(10),
        ));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = TxnStore::new(store).unwrap();
        let patience = ts.backpressure_patience();
        assert!(
            patience >= Duration::from_millis(400),
            "10 ms flushes must scale patience well past the 200 ms floor, got {patience:?}"
        );
        assert!(patience <= Duration::from_secs(5), "capped at 5 s");
        // And the knob is overridable.
        ts.set_backpressure_patience(Duration::from_millis(42));
        assert_eq!(ts.backpressure_patience(), Duration::from_millis(42));
    }

    #[test]
    fn concurrent_batched_commits_all_apply_and_amortize_flushes() {
        let device = Arc::new(MemDevice::with_capacity(32 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 1024,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = Arc::new(
            TxnStore::with_config(
                Arc::clone(&store),
                hfad_storage::GroupCommitConfig::batched(16, std::time::Duration::from_micros(200)),
            )
            .unwrap(),
        );
        let threads = 4usize;
        let per_thread = 16usize;
        let oids: Vec<_> = (0..threads)
            .map(|_| ts.store().create_default(0).unwrap())
            .collect();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ts = Arc::clone(&ts);
                let oid = oids[t];
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let mut txn = ts.begin();
                        txn.write(oid, (i * 8) as u64, format!("w{t:02}{i:03}").as_bytes())
                            .unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (t, oid) in oids.iter().enumerate() {
            let last = format!("w{t:02}{:03}", per_thread - 1);
            let data = ts
                .store()
                .read(*oid, ((per_thread - 1) * 8) as u64, last.len() as u64)
                .unwrap();
            assert_eq!(data, last.as_bytes());
        }
        let stats = ts.group_commit_stats();
        assert_eq!(stats.commits, (threads * per_thread) as u64);
        assert!(stats.max_batch >= 1 && stats.max_batch <= 16);
        assert!(stats.flushes <= stats.commits);
        // Every acknowledged commit must be replayable from the journal.
        assert_eq!(
            ts.journal().committed_payloads().unwrap().len(),
            threads * per_thread
        );
    }

    #[test]
    fn unbatched_config_reproduces_sync_per_commit() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts =
            TxnStore::with_config(store, hfad_storage::GroupCommitConfig::unbatched()).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        for i in 0..4u64 {
            let mut txn = ts.begin();
            txn.write(oid, i * 4, b"abcd").unwrap();
            txn.commit().unwrap();
        }
        let stats = ts.group_commit_stats();
        assert_eq!(stats.commits, 4);
        assert_eq!(stats.flushes, 4);
        assert_eq!(stats.max_batch, 1);
    }

    #[test]
    fn oversized_transaction_fails_with_journal_full() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 3,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = TxnStore::new(store).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        let mut txn = ts.begin();
        txn.write(oid, 0, &vec![0u8; 64 * 1024]).unwrap();
        let err = txn.commit().unwrap_err();
        assert!(matches!(
            err,
            OsdError::Storage(hfad_storage::StorageError::JournalFull { .. })
        ));
        // The failed commit must not have been applied to the store.
        assert_eq!(ts.store().len(oid).unwrap(), 0);
        // The journal region is still usable for transactions that fit.
        let mut txn = ts.begin();
        txn.write(oid, 0, b"fits").unwrap();
        txn.commit().unwrap();
        assert_eq!(ts.store().read(oid, 0, 4).unwrap(), b"fits".to_vec());
    }

    #[test]
    fn journal_full_triggers_auto_checkpoint_and_commit_succeeds() {
        let device = Arc::new(MemDevice::with_capacity(16 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    // Tiny ring: fills after a handful of commits.
                    journal_blocks: 3,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = TxnStore::new(store).unwrap();
        let oid = ts.store().create_default(0).unwrap();
        // Far more commit bytes than the region holds: without
        // auto-checkpoint this loop would fail with JournalFull.
        for i in 0..64u64 {
            let mut txn = ts.begin();
            txn.write(oid, i * 128, &[i as u8; 128]).unwrap();
            txn.commit().unwrap();
        }
        assert!(
            ts.auto_checkpoints() >= 1,
            "the tiny journal must have forced at least one auto-checkpoint"
        );
        // Every commit was applied.
        for i in 0..64u64 {
            assert_eq!(
                ts.store().read(oid, i * 128, 128).unwrap(),
                vec![i as u8; 128],
                "commit {i}"
            );
        }
    }

    #[test]
    fn concurrent_commits_survive_auto_checkpoints() {
        let device = Arc::new(MemDevice::with_capacity(32 * 1024 * 1024));
        let store = Arc::new(
            ObjectStore::create(
                device,
                StoreConfig {
                    journal_blocks: 4,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ts = Arc::new(TxnStore::new(store).unwrap());
        let threads = 4usize;
        let per_thread = 32usize;
        let oids: Vec<_> = (0..threads)
            .map(|_| ts.store().create_default(0).unwrap())
            .collect();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ts = Arc::clone(&ts);
                let oid = oids[t];
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let mut txn = ts.begin();
                        txn.write(oid, (i * 64) as u64, &[(t * 16 + 1) as u8; 64])
                            .unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(ts.auto_checkpoints() >= 1);
        for (t, oid) in oids.iter().enumerate() {
            assert_eq!(
                ts.store().len(*oid).unwrap(),
                (per_thread * 64) as u64,
                "thread {t} lost commits"
            );
        }
    }

    #[test]
    fn store_without_journal_rejected() {
        let store = Arc::new(ObjectStore::in_memory(4 * 1024 * 1024).unwrap());
        assert!(TxnStore::new(store).is_err());
    }

    #[test]
    fn txn_op_round_trip() {
        for op in [
            TxnOp::Write {
                oid: ObjectId(3),
                offset: 10,
                data: b"abc".to_vec(),
            },
            TxnOp::Insert {
                oid: ObjectId(4),
                offset: 0,
                data: vec![],
            },
            TxnOp::TruncateRange {
                oid: ObjectId(5),
                offset: 100,
                len: 50,
            },
            TxnOp::Create {
                oid: ObjectId(6),
                meta: crate::meta::ObjectMeta::new(10, 20, 0o640, 1234),
            },
            TxnOp::Delete { oid: ObjectId(7) },
        ] {
            assert_eq!(TxnOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(TxnOp::decode(&[9u8; 30]).is_err());
        assert!(TxnOp::decode(&[1u8; 4]).is_err());
        assert!(TxnOp::decode(&[3u8; 20]).is_err(), "short truncate");
        assert!(TxnOp::decode(&[4u8; 12]).is_err(), "short create");
    }

    #[test]
    fn transactional_create_write_and_delete() {
        let ts = txn_store();
        let mut txn = ts.begin();
        // Create and write in the same transaction: the create's id is
        // available immediately for subsequent buffered operations.
        let oid = txn
            .create(crate::meta::ObjectMeta::new(5, 5, 0o600, 42))
            .unwrap();
        txn.write(oid, 0, b"born transactional").unwrap();
        txn.commit().unwrap();
        assert_eq!(
            ts.store().read(oid, 0, 100).unwrap(),
            b"born transactional".to_vec()
        );
        assert_eq!(ts.store().meta(oid).unwrap().security.uid, 5);
        let mut txn = ts.begin();
        txn.delete(oid).unwrap();
        txn.commit().unwrap();
        assert!(matches!(
            ts.store().read(oid, 0, 1),
            Err(OsdError::NoSuchObject(_))
        ));
        assert_eq!(ts.store().object_count(), 0);
    }

    #[test]
    fn aborted_create_leaves_no_object_and_strands_its_id() {
        let ts = txn_store();
        let mut txn = ts.begin();
        let doomed = txn
            .create(crate::meta::ObjectMeta::new(0, 0, 0o644, 0))
            .unwrap();
        txn.write(doomed, 0, b"never").unwrap();
        txn.abort().unwrap();
        assert!(matches!(
            ts.store().read(doomed, 0, 1),
            Err(OsdError::NoSuchObject(_))
        ));
        // Ids are never reused, aborted or not.
        let next = ts.store().create_default(0).unwrap();
        assert_ne!(next, doomed);
    }

    #[test]
    fn create_with_id_is_idempotent() {
        let ts = txn_store();
        let mut txn = ts.begin();
        let oid = txn
            .create(crate::meta::ObjectMeta::new(0, 0, 0o644, 0))
            .unwrap();
        txn.write(oid, 0, b"payload").unwrap();
        txn.commit().unwrap();
        // Redoing the create (as crash replay would) must not clobber the
        // already-applied state.
        ts.store()
            .create_object_with_id(oid, crate::meta::ObjectMeta::new(0, 0, 0o644, 0))
            .unwrap();
        assert_eq!(ts.store().read(oid, 0, 100).unwrap(), b"payload".to_vec());
        assert_eq!(ts.store().object_count(), 1);
    }
}

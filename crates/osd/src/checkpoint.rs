//! The background checkpointer: watermark-driven journal reclaim.
//!
//! A [`Checkpointer`] watches a [`TxnStore`]'s circular journal and fires
//! [`TxnStore::checkpoint_background`] when any of three triggers hits:
//!
//! * **size watermark** — the live extent crossed a fraction of ring
//!   capacity (the steady-state trigger: reclaim starts long before the
//!   ring is full, so committers rarely stall at all);
//! * **age** — live bytes have been sitting unreclaimed too long (bounds
//!   recovery replay time on idle systems);
//! * **request** — a committer actually ran out of space and asked
//!   ([`TxnStore`] signals the monitor before blocking).
//!
//! The checkpoint itself — the store flush, the expensive part — can be
//! handed to a [`BackgroundExecutor`]. When the executor is the async
//! I/O engine, the checkpointer submits at its `WriteBehind` class, so
//! checkpoint drains are scheduled and admission-bounded exactly like
//! dirty-page writeback instead of competing with foreground I/O. The
//! monitor always waits for the submitted job to finish before arming
//! the next trigger, so at most one checkpoint is in flight.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hfad_storage::{BackgroundExecutor, RetryPolicy};

use crate::error::Result;
use crate::txn::TxnStore;

/// Watermark and cadence knobs for a [`Checkpointer`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointConfig {
    /// Fire when live bytes exceed this percentage of ring capacity
    /// (1–99; the default 50 starts draining at half-full).
    pub watermark_pct: u8,
    /// Fire when live bytes have gone unreclaimed this long.
    pub max_age: Duration,
    /// Monitor poll cadence (also the latency bound on reacting to a
    /// watermark crossing when no committer signals explicitly).
    pub interval: Duration,
    /// Retry budget for transient checkpoint failures. While the budget
    /// lasts the store is marked [`Health::Degraded`]; a success restores
    /// it, exhaustion (or a permanent error) degrades it to read-only.
    ///
    /// [`Health::Degraded`]: hfad_storage::Health::Degraded
    pub retry: RetryPolicy,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            watermark_pct: 50,
            max_age: Duration::from_millis(250),
            interval: Duration::from_micros(500),
            retry: RetryPolicy::standard(),
        }
    }
}

struct Shared {
    txn_store: Arc<TxnStore>,
    executor: Option<Arc<dyn BackgroundExecutor>>,
    config: CheckpointConfig,
    stop: AtomicBool,
}

/// A monitor thread driving watermark checkpoints for one [`TxnStore`].
///
/// While attached, the store's commit path treats a full journal as
/// backpressure (block briefly for the in-flight drain) instead of
/// checkpointing inline. Detaches and joins on [`stop`](Self::stop) or
/// drop.
pub struct Checkpointer {
    shared: Arc<Shared>,
    monitor: Option<JoinHandle<()>>,
}

impl Checkpointer {
    /// Starts the monitor. `executor` is where the checkpoint body runs:
    /// pass the engine's `WriteBehind`-class executor to schedule drains
    /// with dirty-page writeback, or `None` to run them on the monitor
    /// thread directly.
    pub fn start(
        txn_store: Arc<TxnStore>,
        executor: Option<Arc<dyn BackgroundExecutor>>,
        config: CheckpointConfig,
    ) -> Checkpointer {
        let watermark = config.watermark_pct.clamp(1, 99) as f64 / 100.0;
        txn_store.attach_checkpointer();
        let shared = Arc::new(Shared {
            txn_store,
            executor,
            config,
            stop: AtomicBool::new(false),
        });
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || monitor_loop(&shared, watermark))
        };
        Checkpointer {
            shared,
            monitor: Some(monitor),
        }
    }

    /// Detaches from the store (releasing any stalled committers into the
    /// inline-checkpoint path) and joins the monitor. Idempotent.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Detaching also wakes the monitor's signal wait.
        self.shared.txn_store.detach_checkpointer();
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn monitor_loop(shared: &Shared, watermark: f64) {
    let ts = &shared.txn_store;
    let journal = ts.journal();
    let mut last_reclaim = Instant::now();
    loop {
        ts.wait_checkpoint_signal(shared.config.interval);
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let requested = ts.take_checkpoint_request();
        let live = journal.live_bytes();
        let over_watermark = journal.utilization() >= watermark;
        let over_age = live > 0 && last_reclaim.elapsed() >= shared.config.max_age;
        if !(requested || over_watermark || over_age) {
            continue;
        }
        if !ts.health().is_writable() {
            // Nothing left to drain into a store that rejects writes;
            // park until detach instead of hammering the failed device.
            continue;
        }
        run_checkpoint_with_retry(shared);
        last_reclaim = Instant::now();
    }
}

/// Runs one checkpoint, absorbing transient device faults with the
/// configured retry budget and reporting into the store's health
/// machine: [`Degraded`](hfad_storage::Health::Degraded) while retrying,
/// restored on success, read-only once the budget is exhausted or the
/// error is permanent (committers must not wait forever on reclaim that
/// will never come — `note`: the transition also wakes space-waiters).
fn run_checkpoint_with_retry(shared: &Shared) {
    let ts = &shared.txn_store;
    let policy = shared.config.retry;
    let mut attempt = 1u32;
    loop {
        match run_checkpoint(shared) {
            Ok(()) => {
                ts.health_state().restore();
                return;
            }
            Err(err) if err.is_transient() && attempt < policy.max_attempts => {
                ts.health_state().degrade(&format!(
                    "background checkpoint attempt {attempt} failed transiently: {err}"
                ));
                std::thread::sleep(policy.backoff(attempt));
                attempt += 1;
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(err) => {
                ts.report_checkpoint_failure(&format!(
                    "background checkpoint failed after {attempt} attempt(s): {err}"
                ));
                return;
            }
        }
    }
}

/// Runs one checkpoint attempt, through the executor when one is
/// attached, and waits for it to finish (at most one drain in flight).
fn run_checkpoint(shared: &Shared) -> Result<()> {
    if let Some(executor) = &shared.executor {
        let ts = Arc::clone(&shared.txn_store);
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Result<()>>();
        let submitted = executor.submit_background(Box::new(move || {
            let _ = done_tx.send(ts.checkpoint_background());
        }));
        if submitted.is_ok() {
            return match done_rx.recv() {
                Ok(result) => result,
                // The job was dropped unrun (executor shut down mid-job);
                // treat it as a skipped attempt, not a device failure.
                Err(_) => Ok(()),
            };
        }
        // Executor full or stopped: fall through to the monitor thread.
    }
    shared.txn_store.checkpoint_background()
}

//! Byte-accessible storage objects.
//!
//! An [`Object`] is the paper's fundamental container: "not only can you
//! read bytes from the object, but you can insert bytes into the middle of
//! objects, remove bytes from the middle, etc." (§3).
//!
//! Each object is represented exactly as §3.4 describes: a B-tree whose
//! keys are logical file offsets and whose values are disk addresses and
//! lengths ([`ExtentValue`]), with the object metadata stored under a
//! reserved "NULL" key. Insert and range-truncate are metadata operations
//! on the extent map (plus at most one bounded data copy at each affected
//! extent boundary), which is what makes them cheap compared to the
//! read-modify-rewrite a conventional file system needs — experiment E3
//! measures precisely this difference.

use hfad_btree::BTree;
use hfad_storage::Extent;

use crate::error::{OsdError, Result};
use crate::meta::{unix_now, ObjectMeta};
use crate::oid::ObjectId;

/// Reserved key holding the object metadata (the paper's "NULL key").
const META_KEY: [u8; 1] = [0x00];
/// Prefix byte for extent-map keys.
const EXTENT_PREFIX: u8 = 0x01;

/// Default maximum number of bytes covered by one extent.
pub const DEFAULT_MAX_EXTENT_BYTES: u64 = 256 * 1024;

/// A value in the extent map: where an extent's bytes live on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentValue {
    /// First device block of the extent's storage.
    pub start_block: u64,
    /// Blocks reserved by the allocator (freed as one unit).
    pub alloc_blocks: u64,
    /// Bytes of object data stored in the extent.
    pub byte_len: u64,
}

impl ExtentValue {
    /// Encoded length in bytes.
    pub const ENCODED_LEN: usize = 24;

    /// Serialises the value.
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[0..8].copy_from_slice(&self.start_block.to_le_bytes());
        out[8..16].copy_from_slice(&self.alloc_blocks.to_le_bytes());
        out[16..24].copy_from_slice(&self.byte_len.to_le_bytes());
        out
    }

    /// Deserialises a value written by [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < Self::ENCODED_LEN {
            return Err(OsdError::Corrupt("extent value too short".to_string()));
        }
        Ok(ExtentValue {
            start_block: u64::from_le_bytes(buf[0..8].try_into().expect("u64")),
            alloc_blocks: u64::from_le_bytes(buf[8..16].try_into().expect("u64")),
            byte_len: u64::from_le_bytes(buf[16..24].try_into().expect("u64")),
        })
    }
}

/// Encodes the extent-map key for a logical offset.
fn extent_key(offset: u64) -> [u8; 9] {
    let mut key = [0u8; 9];
    key[0] = EXTENT_PREFIX;
    key[1..9].copy_from_slice(&offset.to_be_bytes());
    key
}

/// Decodes a logical offset from an extent-map key.
fn parse_extent_key(key: &[u8]) -> Option<u64> {
    if key.len() != 9 || key[0] != EXTENT_PREFIX {
        return None;
    }
    Some(u64::from_be_bytes(key[1..9].try_into().ok()?))
}

/// Summary statistics for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObjectStats {
    /// Logical size in bytes.
    pub size: u64,
    /// Number of extents in the map.
    pub extents: u64,
    /// Device blocks reserved for the object's data.
    pub allocated_blocks: u64,
}

/// An open, byte-accessible object.
///
/// Obtained from [`ObjectStore`](crate::store::ObjectStore); all mutating
/// operations update the object metadata (size and modification time) and
/// persist it to the object's B-tree.
pub struct Object {
    oid: ObjectId,
    tree: BTree,
    meta: ObjectMeta,
    block_size: usize,
    max_extent_bytes: u64,
}

impl Object {
    /// Wraps an existing extent-map tree. Used by the store.
    pub(crate) fn from_parts(
        oid: ObjectId,
        tree: BTree,
        meta: ObjectMeta,
        max_extent_bytes: u64,
    ) -> Self {
        let block_size = tree.context().device.block_size();
        Object {
            oid,
            tree,
            meta,
            block_size,
            max_extent_bytes,
        }
    }

    /// Creates a brand-new object backed by a fresh B-tree.
    pub(crate) fn create(
        oid: ObjectId,
        ctx: hfad_btree::TreeContext,
        meta: ObjectMeta,
        max_extent_bytes: u64,
    ) -> Result<Self> {
        let mut tree = BTree::create(ctx)?;
        tree.insert(&META_KEY, &meta.encode())?;
        Ok(Object::from_parts(oid, tree, meta, max_extent_bytes))
    }

    /// This object's identifier.
    pub fn oid(&self) -> ObjectId {
        self.oid
    }

    /// Current metadata (cached copy; always in sync with the tree).
    pub fn meta(&self) -> ObjectMeta {
        self.meta
    }

    /// Logical size in bytes.
    pub fn len(&self) -> u64 {
        self.meta.size
    }

    /// Returns `true` if the object holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.meta.size == 0
    }

    /// Root page of the extent-map tree (persisted by the store).
    pub fn root_page(&self) -> u64 {
        self.tree.root_page()
    }

    /// Replaces the security attributes and flags (size and times are
    /// managed by the data operations).
    pub fn set_meta(&mut self, meta: ObjectMeta) -> Result<()> {
        self.meta.security = meta.security;
        self.meta.flags = meta.flags;
        self.write_meta()
    }

    fn write_meta(&mut self) -> Result<()> {
        self.tree.insert(&META_KEY, &self.meta.encode())?;
        Ok(())
    }

    fn touch_modified(&mut self) {
        self.meta.modified = unix_now();
    }

    /// Collects `(logical_start, value)` for every extent overlapping
    /// `[lo, hi)`. Because extents never exceed `max_extent_bytes`, the scan
    /// can start a bounded distance before `lo`.
    fn find_extents(&self, lo: u64, hi: u64) -> Result<Vec<(u64, ExtentValue)>> {
        if hi <= lo {
            return Ok(Vec::new());
        }
        let scan_from = lo.saturating_sub(self.max_extent_bytes);
        let lower = extent_key(scan_from);
        let upper = extent_key(hi);
        let mut out = Vec::new();
        for entry in self.tree.range(&lower, Some(&upper))? {
            let (key, value) = entry?;
            let Some(start) = parse_extent_key(&key) else {
                continue;
            };
            let value = ExtentValue::decode(&value)?;
            if start + value.byte_len > lo && start < hi {
                out.push((start, value));
            }
        }
        Ok(out)
    }

    /// Collects every extent at or after logical offset `from`.
    fn extents_from(&self, from: u64) -> Result<Vec<(u64, ExtentValue)>> {
        let lower = extent_key(from);
        let mut out = Vec::new();
        for entry in self.tree.range(&lower, None)? {
            let (key, value) = entry?;
            if let Some(start) = parse_extent_key(&key) {
                out.push((start, ExtentValue::decode(&value)?));
            }
        }
        Ok(out)
    }

    /// Every extent in the map, in logical order.
    pub(crate) fn all_extents(&self) -> Result<Vec<(u64, ExtentValue)>> {
        self.extents_from(0)
    }

    /// Summary statistics.
    pub fn stats(&self) -> Result<ObjectStats> {
        let extents = self.all_extents()?;
        Ok(ObjectStats {
            size: self.meta.size,
            extents: extents.len() as u64,
            allocated_blocks: extents.iter().map(|(_, v)| v.alloc_blocks).sum(),
        })
    }

    fn alloc_extent(&self, byte_len: u64) -> Result<ExtentValue> {
        let blocks = byte_len.div_ceil(self.block_size as u64).max(1);
        let granted = self.tree.context().allocator.allocate(blocks)?;
        Ok(ExtentValue {
            start_block: granted.start,
            alloc_blocks: granted.len,
            byte_len,
        })
    }

    fn free_extent(&self, value: &ExtentValue) -> Result<()> {
        self.tree
            .context()
            .allocator
            .free(Extent::new(value.start_block, value.alloc_blocks))?;
        Ok(())
    }

    /// Reads `len` bytes of an extent's stored data starting `from` bytes
    /// into the extent.
    fn read_extent_data(&self, value: &ExtentValue, from: u64, len: u64) -> Result<Vec<u8>> {
        debug_assert!(from + len <= value.byte_len);
        let device = &self.tree.context().device;
        let bs = self.block_size as u64;
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = from;
        let mut block_buf = vec![0u8; self.block_size];
        while (pos - from) < len {
            let block = value.start_block + pos / bs;
            let in_block = (pos % bs) as usize;
            let chunk = ((len - (pos - from)) as usize).min(self.block_size - in_block);
            device.read_block(block, &mut block_buf)?;
            out.extend_from_slice(&block_buf[in_block..in_block + chunk]);
            pos += chunk as u64;
        }
        Ok(out)
    }

    /// Writes `data` into an extent's storage starting `from` bytes into the
    /// extent. Partial blocks at the edges are read-modified-written.
    fn write_extent_data(&self, value: &ExtentValue, from: u64, data: &[u8]) -> Result<()> {
        debug_assert!(from + data.len() as u64 <= value.alloc_blocks * self.block_size as u64);
        let device = &self.tree.context().device;
        let bs = self.block_size as u64;
        let mut pos = from;
        let mut written = 0usize;
        let mut block_buf = vec![0u8; self.block_size];
        while written < data.len() {
            let block = value.start_block + pos / bs;
            let in_block = (pos % bs) as usize;
            let chunk = (data.len() - written).min(self.block_size - in_block);
            if in_block != 0 || chunk != self.block_size {
                device.read_block(block, &mut block_buf)?;
            } else {
                block_buf.iter_mut().for_each(|b| *b = 0);
            }
            block_buf[in_block..in_block + chunk].copy_from_slice(&data[written..written + chunk]);
            device.write_block(block, &block_buf)?;
            written += chunk;
            pos += chunk as u64;
        }
        Ok(())
    }

    /// Appends fresh extents holding `data` with logical start `offset`.
    fn add_data_extents(&mut self, mut offset: u64, data: &[u8]) -> Result<()> {
        let mut remaining = data;
        while !remaining.is_empty() {
            let chunk_len = (remaining.len() as u64).min(self.max_extent_bytes);
            let value = self.alloc_extent(chunk_len)?;
            self.write_extent_data(&value, 0, &remaining[..chunk_len as usize])?;
            self.tree.insert(&extent_key(offset), &value.encode())?;
            offset += chunk_len;
            remaining = &remaining[chunk_len as usize..];
        }
        Ok(())
    }

    /// Splits the extent starting at `start` so that the first `split_off`
    /// bytes stay in place and the remainder becomes a separate extent (with
    /// its data copied to a fresh allocation) keyed at `start + split_off`.
    fn split_extent_at(&mut self, start: u64, value: ExtentValue, split_off: u64) -> Result<()> {
        debug_assert!(split_off > 0 && split_off < value.byte_len);
        let tail_len = value.byte_len - split_off;
        let tail_data = self.read_extent_data(&value, split_off, tail_len)?;
        // Shrink the original in place; its allocation is kept whole and
        // freed when the extent is eventually removed.
        let mut head = value;
        head.byte_len = split_off;
        self.tree.insert(&extent_key(start), &head.encode())?;
        let tail = self.alloc_extent(tail_len)?;
        self.write_extent_data(&tail, 0, &tail_data)?;
        self.tree
            .insert(&extent_key(start + split_off), &tail.encode())?;
        Ok(())
    }

    /// Reads up to `len` bytes starting at `offset`. Reads past the end of
    /// the object are truncated; holes read as zeros.
    pub fn read(&mut self, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.meta.accessed = unix_now();
        if offset >= self.meta.size {
            return Ok(Vec::new());
        }
        let len = len.min(self.meta.size - offset);
        let mut out = vec![0u8; len as usize];
        for (start, value) in self.find_extents(offset, offset + len)? {
            let ext_lo = start.max(offset);
            let ext_hi = (start + value.byte_len).min(offset + len);
            if ext_hi <= ext_lo {
                continue;
            }
            let data = self.read_extent_data(&value, ext_lo - start, ext_hi - ext_lo)?;
            let dst = (ext_lo - offset) as usize;
            out[dst..dst + data.len()].copy_from_slice(&data);
        }
        Ok(out)
    }

    /// Writes `data` at `offset`, overwriting existing bytes and extending
    /// the object if the write reaches past its end. Writing past the end
    /// leaves a hole that reads as zeros.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let end = offset + data.len() as u64;
        // Overwrite the parts covered by existing extents.
        let mut covered: Vec<(u64, u64)> = Vec::new();
        for (start, value) in self.find_extents(offset, end)? {
            let lo = start.max(offset);
            let hi = (start + value.byte_len).min(end);
            if hi <= lo {
                continue;
            }
            self.write_extent_data(
                &value,
                lo - start,
                &data[(lo - offset) as usize..(hi - offset) as usize],
            )?;
            covered.push((lo, hi));
        }
        covered.sort_unstable();
        // Allocate new extents for the uncovered gaps.
        let mut cursor = offset;
        for (lo, hi) in &covered {
            if *lo > cursor {
                self.add_data_extents(
                    cursor,
                    &data[(cursor - offset) as usize..(lo - offset) as usize],
                )?;
            }
            cursor = cursor.max(*hi);
        }
        if cursor < end {
            self.add_data_extents(cursor, &data[(cursor - offset) as usize..])?;
        }
        self.meta.size = self.meta.size.max(end);
        self.touch_modified();
        self.write_meta()
    }

    /// Appends `data` to the end of the object.
    pub fn append(&mut self, data: &[u8]) -> Result<()> {
        self.write(self.meta.size, data)
    }

    /// Inserts `data` at `offset`, shifting every byte at or after `offset`
    /// towards the end of the object (§3.1.2's `insert` call).
    ///
    /// `offset` must be at most the current size.
    pub fn insert(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        if offset > self.meta.size {
            return Err(OsdError::OutOfBounds {
                size: self.meta.size,
                offset,
                len: data.len() as u64,
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        // Split the extent containing the insertion point, if any, so every
        // extent lies entirely before or entirely at/after `offset`.
        for (start, value) in self.find_extents(offset.saturating_sub(1), offset + 1)? {
            if start < offset && start + value.byte_len > offset {
                self.split_extent_at(start, value, offset - start)?;
            }
        }
        // Shift every extent at or after the insertion point. Processing in
        // descending key order avoids transient key collisions.
        let shift = data.len() as u64;
        let mut to_shift = self.extents_from(offset)?;
        to_shift.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        for (start, value) in to_shift {
            self.tree.delete(&extent_key(start))?;
            self.tree
                .insert(&extent_key(start + shift), &value.encode())?;
        }
        // Store the new bytes.
        self.add_data_extents(offset, data)?;
        self.meta.size += shift;
        self.touch_modified();
        self.write_meta()
    }

    /// Removes `len` bytes starting at `offset`, shifting the remainder of
    /// the object towards the start (§3.1.2's extended `truncate` call,
    /// which "takes two off_t's, an offset and length").
    ///
    /// The range is clamped to the current size; truncating a range that
    /// starts at or past the end is a no-op.
    pub fn truncate_range(&mut self, offset: u64, len: u64) -> Result<()> {
        if offset >= self.meta.size || len == 0 {
            return Ok(());
        }
        let len = len.min(self.meta.size - offset);
        let end = offset + len;
        // Split boundary extents so every extent is fully inside or fully
        // outside the removal range.
        for (start, value) in self.find_extents(offset.saturating_sub(1), offset + 1)? {
            if start < offset && start + value.byte_len > offset {
                self.split_extent_at(start, value, offset - start)?;
            }
        }
        for (start, value) in self.find_extents(end.saturating_sub(1), end + 1)? {
            if start < end && start + value.byte_len > end {
                self.split_extent_at(start, value, end - start)?;
            }
        }
        // Drop every extent fully inside the range and free its blocks.
        for (start, value) in self.find_extents(offset, end)? {
            debug_assert!(start >= offset && start + value.byte_len <= end);
            self.tree.delete(&extent_key(start))?;
            self.free_extent(&value)?;
        }
        // Shift everything after the range towards the start, in ascending
        // order so shifted keys never collide with not-yet-moved ones.
        let mut to_shift = self.extents_from(end)?;
        to_shift.sort_unstable_by_key(|(start, _)| *start);
        for (start, value) in to_shift {
            self.tree.delete(&extent_key(start))?;
            self.tree
                .insert(&extent_key(start - len), &value.encode())?;
        }
        self.meta.size -= len;
        self.touch_modified();
        self.write_meta()
    }

    /// POSIX-style truncate to an absolute size: shrinking removes the tail,
    /// growing leaves a hole.
    pub fn truncate(&mut self, new_size: u64) -> Result<()> {
        if new_size < self.meta.size {
            self.truncate_range(new_size, self.meta.size - new_size)
        } else {
            self.meta.size = new_size;
            self.touch_modified();
            self.write_meta()
        }
    }

    /// Frees all data extents and destroys the extent-map tree. Consumes the
    /// object; used by [`ObjectStore::delete`](crate::store::ObjectStore::delete).
    pub(crate) fn destroy(self) -> Result<()> {
        for (_, value) in self.all_extents()? {
            self.free_extent(&value)?;
        }
        self.tree.destroy()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hfad_btree::TreeContext;
    use hfad_storage::{Allocator, BuddyAllocator, MemDevice};

    use super::*;

    fn new_object(max_extent: u64) -> Object {
        let device = Arc::new(MemDevice::new(16384, 512));
        let allocator = Arc::new(BuddyAllocator::new(1, 16383));
        let ctx = TreeContext::new(device, allocator);
        Object::create(
            ObjectId(1),
            ctx,
            ObjectMeta::new(0, 0, 0o644, 1),
            max_extent,
        )
        .unwrap()
    }

    #[test]
    fn new_object_is_empty() {
        let mut obj = new_object(4096);
        assert!(obj.is_empty());
        assert_eq!(obj.len(), 0);
        assert_eq!(obj.read(0, 100).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut obj = new_object(4096);
        let data = b"hello object storage device".to_vec();
        obj.write(0, &data).unwrap();
        assert_eq!(obj.len(), data.len() as u64);
        assert_eq!(obj.read(0, data.len() as u64).unwrap(), data);
        assert_eq!(obj.read(6, 6).unwrap(), b"object".to_vec());
    }

    #[test]
    fn overwrite_in_place() {
        let mut obj = new_object(4096);
        obj.write(0, b"aaaaaaaaaa").unwrap();
        obj.write(3, b"BBB").unwrap();
        assert_eq!(obj.read(0, 10).unwrap(), b"aaaBBBaaaa".to_vec());
        assert_eq!(obj.len(), 10);
    }

    #[test]
    fn write_spanning_multiple_extents() {
        let mut obj = new_object(100);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        obj.write(0, &data).unwrap();
        assert_eq!(obj.read(0, 1000).unwrap(), data);
        let stats = obj.stats().unwrap();
        assert!(stats.extents >= 10, "expected many small extents");
    }

    #[test]
    fn sparse_write_leaves_zero_hole() {
        let mut obj = new_object(4096);
        obj.write(0, b"head").unwrap();
        obj.write(100, b"tail").unwrap();
        assert_eq!(obj.len(), 104);
        let hole = obj.read(4, 96).unwrap();
        assert!(hole.iter().all(|&b| b == 0));
        assert_eq!(obj.read(100, 4).unwrap(), b"tail".to_vec());
    }

    #[test]
    fn append_grows_object() {
        let mut obj = new_object(64);
        for i in 0..20u8 {
            obj.append(&[i; 10]).unwrap();
        }
        assert_eq!(obj.len(), 200);
        assert_eq!(obj.read(150, 10).unwrap(), vec![15u8; 10]);
    }

    #[test]
    fn insert_in_middle_shifts_tail() {
        let mut obj = new_object(4096);
        obj.write(0, b"hello world").unwrap();
        obj.insert(5, b", tagged").unwrap();
        assert_eq!(obj.len(), 19);
        assert_eq!(obj.read(0, 19).unwrap(), b"hello, tagged world".to_vec());
    }

    #[test]
    fn insert_at_start_and_end() {
        let mut obj = new_object(4096);
        obj.write(0, b"middle").unwrap();
        obj.insert(0, b"start-").unwrap();
        obj.insert(obj.len(), b"-end").unwrap();
        assert_eq!(
            obj.read(0, obj.len()).unwrap(),
            b"start-middle-end".to_vec()
        );
    }

    #[test]
    fn insert_beyond_end_rejected() {
        let mut obj = new_object(4096);
        obj.write(0, b"abc").unwrap();
        let err = obj.insert(10, b"x").unwrap_err();
        assert!(matches!(err, OsdError::OutOfBounds { .. }));
    }

    #[test]
    fn insert_into_multi_extent_object() {
        let mut obj = new_object(128);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        obj.write(0, &data).unwrap();
        obj.insert(500, b"INSERTED").unwrap();
        let mut expected = data.clone();
        expected.splice(500..500, b"INSERTED".iter().copied());
        assert_eq!(obj.read(0, obj.len()).unwrap(), expected);
    }

    #[test]
    fn truncate_range_middle() {
        let mut obj = new_object(4096);
        obj.write(0, b"hello cruel world").unwrap();
        obj.truncate_range(5, 6).unwrap();
        assert_eq!(obj.read(0, obj.len()).unwrap(), b"hello world".to_vec());
        assert_eq!(obj.len(), 11);
    }

    #[test]
    fn truncate_range_across_extents_frees_blocks() {
        let mut obj = new_object(128);
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        obj.write(0, &data).unwrap();
        let before_blocks = obj.stats().unwrap().allocated_blocks;
        obj.truncate_range(100, 1500).unwrap();
        let mut expected = data.clone();
        expected.drain(100..1600);
        assert_eq!(obj.len(), 500);
        assert_eq!(obj.read(0, obj.len()).unwrap(), expected);
        assert!(obj.stats().unwrap().allocated_blocks < before_blocks);
    }

    #[test]
    fn truncate_range_clamps_to_size() {
        let mut obj = new_object(4096);
        obj.write(0, b"0123456789").unwrap();
        obj.truncate_range(5, 1000).unwrap();
        assert_eq!(obj.read(0, obj.len()).unwrap(), b"01234".to_vec());
        // A range past the end is a no-op.
        obj.truncate_range(100, 5).unwrap();
        assert_eq!(obj.len(), 5);
    }

    #[test]
    fn posix_truncate_shrink_and_grow() {
        let mut obj = new_object(4096);
        obj.write(0, b"abcdefghij").unwrap();
        obj.truncate(4).unwrap();
        assert_eq!(obj.read(0, 10).unwrap(), b"abcd".to_vec());
        obj.truncate(8).unwrap();
        assert_eq!(obj.len(), 8);
        assert_eq!(obj.read(4, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn metadata_tracks_size_and_times() {
        let mut obj = new_object(4096);
        assert_eq!(obj.meta().size, 0);
        obj.write(0, b"xyz").unwrap();
        assert_eq!(obj.meta().size, 3);
        assert!(obj.meta().modified >= obj.meta().created);
    }

    #[test]
    fn destroy_returns_all_storage() {
        let device = Arc::new(MemDevice::new(16384, 512));
        let allocator = Arc::new(BuddyAllocator::new(1, 16383));
        let free_before = allocator.stats().free_blocks;
        let ctx = TreeContext::new(
            device,
            Arc::clone(&allocator) as Arc<dyn hfad_storage::Allocator>,
        );
        let mut obj =
            Object::create(ObjectId(9), ctx, ObjectMeta::new(0, 0, 0o644, 1), 256).unwrap();
        obj.write(0, &vec![7u8; 5000]).unwrap();
        assert!(allocator.stats().free_blocks < free_before);
        obj.destroy().unwrap();
        assert_eq!(allocator.stats().free_blocks, free_before);
    }

    #[test]
    fn extent_value_round_trip() {
        let v = ExtentValue {
            start_block: 77,
            alloc_blocks: 8,
            byte_len: 3000,
        };
        assert_eq!(ExtentValue::decode(&v.encode()).unwrap(), v);
        assert!(ExtentValue::decode(&[0u8; 5]).is_err());
    }

    #[test]
    fn extent_key_round_trip_and_order() {
        assert!(extent_key(5) < extent_key(6));
        assert!(extent_key(255) < extent_key(256));
        assert_eq!(parse_extent_key(&extent_key(12345)), Some(12345));
        assert_eq!(parse_extent_key(&META_KEY), None);
    }
}

//! Crash-torture child process for the kill-9 harness
//! (`tests/crash_harness.rs`).
//!
//! The harness forks this binary as a real OS subprocess, lets it run a
//! randomized commit workload against a file-backed store, and SIGKILLs
//! it at a random point — mid-group-commit, mid-background-checkpoint,
//! even mid-recovery. The parent then reopens the store and checks the
//! recovered bytes against a shadow model, so everything this child
//! writes must be a pure function of `(seed, oid, counter)`.
//!
//! Subcommands:
//!
//! * `workload <store> <seed> <oid...>` — open the store as the writer
//!   (with a background checkpointer attached) and run one thread per
//!   oid. Each thread repeatedly commits a transaction that bumps an
//!   8-byte little-endian counter at offset 0 and writes the
//!   deterministic 64-byte record for the new counter value into one of
//!   [`WINDOW`] rotating slots. After each commit returns, the new
//!   counter is recorded in an fsync'd per-thread ack sidecar
//!   (`<store>.ack.<thread>`): every acked value is a durability
//!   promise the parent holds recovery to.
//! * `lock-writer <store> <hold_ms>` — take the exclusive multi-process
//!   lock, print `ACQUIRED`, and sit on it (the parent kills us to test
//!   stale-holder healing).
//! * `lock-reader-churn <store> <iters>` — repeatedly take and release
//!   the shared lock (the parent checks writers are not starved).

use std::io::{Seek, SeekFrom, Write};
use std::sync::Arc;
use std::time::Duration;

use hfad_osd::{open_file, CheckpointConfig, Checkpointer, ObjectId};
use hfad_storage::{LockMode, ProcLock};

/// Record bytes written per commit (besides the counter).
pub const REC: usize = 64;
/// Rotating record slots per object; slot for counter `k` is
/// `k % WINDOW`, at byte offset `8 + (k % WINDOW) * REC`.
pub const WINDOW: u64 = 8;

/// The deterministic record for `(seed, oid, k)`: 64 LCG-filled bytes.
/// The parent rebuilds its shadow model with the identical function.
pub fn record(seed: u64, oid: u64, k: u64) -> [u8; REC] {
    let mut state =
        seed ^ oid.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    let mut out = [0u8; REC];
    for chunk in out.chunks_mut(8) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        chunk.copy_from_slice(&state.to_le_bytes()[..chunk.len()]);
    }
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: crash_child workload <store> <seed> <oid...>\n\
         \x20      crash_child lock-writer <store> <hold_ms>\n\
         \x20      crash_child lock-reader-churn <store> <iters>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("workload") => workload(&args[1..]),
        Some("lock-writer") => lock_writer(&args[1..]),
        Some("lock-reader-churn") => lock_reader_churn(&args[1..]),
        _ => usage(),
    }
}

/// One commit-loop thread: bump the object's counter forever, acking
/// each durable commit. Runs until the process is SIGKILLed.
fn commit_loop(
    ts: Arc<hfad_osd::TxnStore>,
    store_path: String,
    seed: u64,
    thread: usize,
    oid: u64,
) {
    let mut ack = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .open(format!("{store_path}.ack.{thread}"))
        .expect("open ack sidecar");
    let id = ObjectId::from(oid);
    let mut k = u64::from_le_bytes(
        ts.store()
            .read(id, 0, 8)
            .expect("read counter")
            .try_into()
            .expect("counter is 8 bytes"),
    );
    loop {
        k += 1;
        let mut txn = ts.begin();
        txn.write(id, 0, &k.to_le_bytes()).expect("buffer counter");
        txn.write(id, 8 + (k % WINDOW) * REC as u64, &record(seed, oid, k))
            .expect("buffer record");
        txn.commit().expect("commit");
        // The commit fsync'd the journal: promise durability to the
        // parent. The ack itself is fsync'd so a kill between commit
        // and ack can only *under*-promise, never over-promise.
        ack.seek(SeekFrom::Start(0)).expect("seek ack");
        ack.write_all(&k.to_le_bytes()).expect("write ack");
        ack.sync_data().expect("fsync ack");
    }
}

fn workload(args: &[String]) {
    if args.len() < 3 {
        usage();
    }
    let store_path = args[0].clone();
    let seed: u64 = args[1].parse().expect("seed");
    let oids: Vec<u64> = args[2..].iter().map(|a| a.parse().expect("oid")).collect();
    let (ts, _replayed) =
        open_file(&store_path, Default::default(), Default::default()).expect("open store");
    // A real background checkpointer, so kills land mid-background-
    // checkpoint as well as mid-commit.
    let _cp = Checkpointer::start(Arc::clone(&ts), None, CheckpointConfig::default());
    let mut handles = Vec::new();
    for (thread, &oid) in oids.iter().enumerate() {
        let ts = Arc::clone(&ts);
        let path = store_path.clone();
        handles.push(std::thread::spawn(move || {
            commit_loop(ts, path, seed, thread, oid)
        }));
    }
    for h in handles {
        let _ = h.join();
    }
}

fn lock_writer(args: &[String]) {
    if args.len() != 2 {
        usage();
    }
    let hold_ms: u64 = args[1].parse().expect("hold_ms");
    let _lock = ProcLock::acquire(std::path::Path::new(&args[0]), LockMode::Exclusive)
        .expect("acquire exclusive lock");
    println!("ACQUIRED");
    std::io::stdout().flush().expect("flush");
    std::thread::sleep(Duration::from_millis(hold_ms));
}

fn lock_reader_churn(args: &[String]) {
    if args.len() != 2 {
        usage();
    }
    let path = std::path::PathBuf::from(&args[0]);
    let iters: u64 = args[1].parse().expect("iters");
    for _ in 0..iters {
        // The parent may hold (or be queued for) the exclusive lock;
        // a timeout here just means churn continues around it.
        if let Ok(lock) =
            ProcLock::acquire_timeout(&path, LockMode::Shared, Duration::from_millis(50))
        {
            drop(lock);
        }
    }
}

//! Property-based tests: the persistent key/value index agrees with an
//! in-memory model, and full-text conjunctions obey set semantics.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;

use hfad_btree::TreeContext;
use hfad_index::{FullTextIndex, IndexStore, KeyValueIndex, Tag};
use hfad_osd::ObjectId;
use hfad_storage::{BuddyAllocator, MemDevice};

fn ctx() -> TreeContext {
    let device = Arc::new(MemDevice::new(65_536, 512));
    let allocator = Arc::new(BuddyAllocator::new(1, 65_535));
    TreeContext::new(device, allocator)
}

fn tag_for(i: u8) -> Tag {
    match i % 4 {
        0 => Tag::Posix,
        1 => Tag::User,
        2 => Tag::Udef,
        _ => Tag::App,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Insert/remove/lookup on the sharded key/value index matches a
    /// BTreeMap<(tag, value), BTreeSet<oid>> model.
    #[test]
    fn keyvalue_matches_model(
        ops in prop::collection::vec(
            (any::<u8>(), "[a-z]{1,8}", 0u64..30, prop::bool::ANY),
            1..120
        ),
        shards in 1usize..8,
    ) {
        let idx = KeyValueIndex::new(ctx(), "kv", None, shards).unwrap();
        let mut model: BTreeMap<(String, String), BTreeSet<u64>> = BTreeMap::new();
        for (tag_sel, value, oid, is_insert) in ops {
            let tag = tag_for(tag_sel);
            let key = (tag.name().to_string(), value.clone());
            if is_insert {
                idx.insert(&tag, &value, ObjectId(oid)).unwrap();
                model.entry(key).or_default().insert(oid);
            } else {
                idx.remove(&tag, &value, ObjectId(oid)).unwrap();
                model.entry(key).or_default().remove(&oid);
            }
            let got: Vec<u64> = idx
                .lookup(&tag, &value)
                .unwrap()
                .into_iter()
                .map(|o| o.as_u64())
                .collect();
            let want: Vec<u64> = model[&(tag.name().to_string(), value.clone())]
                .iter()
                .copied()
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    /// remove_object always clears every posting for that object and only
    /// that object.
    #[test]
    fn remove_object_is_exact(
        postings in prop::collection::vec((any::<u8>(), "[a-z]{1,6}", 0u64..10), 1..60),
        victim in 0u64..10,
    ) {
        let idx = KeyValueIndex::new(ctx(), "kv", None, 4).unwrap();
        for (tag_sel, value, oid) in &postings {
            idx.insert(&tag_for(*tag_sel), value, ObjectId(*oid)).unwrap();
        }
        idx.remove_object(ObjectId(victim)).unwrap();
        prop_assert!(idx.tags_of(ObjectId(victim)).unwrap().is_empty());
        for (tag_sel, value, oid) in &postings {
            if *oid == victim {
                continue;
            }
            let hits = idx.lookup(&tag_for(*tag_sel), value).unwrap();
            prop_assert!(hits.contains(&ObjectId(*oid)), "lost posting for oid {oid}");
        }
    }

    /// Full-text conjunctive queries return exactly the documents whose
    /// term sets contain every query term.
    #[test]
    fn fulltext_conjunction_is_set_intersection(
        docs in prop::collection::vec(prop::collection::vec(0usize..20, 1..10), 1..25),
        query in prop::collection::vec(0usize..20, 1..4),
    ) {
        let idx = FullTextIndex::new(ctx(), 4).unwrap();
        let word = |i: usize| format!("term{i:02}");
        for (doc_id, terms) in docs.iter().enumerate() {
            let text: Vec<String> = terms.iter().map(|&t| word(t)).collect();
            idx.index_document(ObjectId(doc_id as u64), &text.join(" ")).unwrap();
        }
        let query_words: Vec<String> = query.iter().map(|&t| word(t)).collect();
        let query_refs: Vec<&str> = query_words.iter().map(String::as_str).collect();
        let got: BTreeSet<u64> = idx
            .query_all(&query_refs)
            .unwrap()
            .into_iter()
            .map(|o| o.as_u64())
            .collect();
        let want: BTreeSet<u64> = docs
            .iter()
            .enumerate()
            .filter(|(_, terms)| query.iter().all(|q| terms.contains(q)))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }
}

//! Query representation and evaluation.
//!
//! The paper's naming interface takes "the vector of tag/value pairs" and
//! returns "the conjunction of the results of an index lookup for each
//! element in the vector" (§3.1.1). [`Query::conjunction`] is exactly that.
//! Whether index stores should also support "arbitrary boolean queries" is
//! left open in §4; [`Query`] therefore also offers disjunction and
//! negation as the extension, evaluated set-wise over the registry.

use std::collections::BTreeSet;

use hfad_osd::ObjectId;

use crate::error::{IndexError, Result};
use crate::store::IndexRegistry;
use crate::tag::{Tag, TagValue};

/// A boolean query over tag/value postings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// All objects posted under one tag/value pair.
    Term(TagValue),
    /// Objects matching every sub-query (empty `And` is invalid).
    And(Vec<Query>),
    /// Objects matching at least one sub-query (empty `Or` is invalid).
    Or(Vec<Query>),
    /// Objects matching `positive` but not `negative`.
    AndNot {
        /// The query providing candidate objects.
        positive: Box<Query>,
        /// The query whose matches are excluded.
        negative: Box<Query>,
    },
}

impl Query {
    /// A single tag/value term.
    pub fn term(tag: Tag, value: impl Into<String>) -> Self {
        Query::Term(TagValue::new(tag, value))
    }

    /// The paper's native operation: the conjunction of a vector of
    /// tag/value pairs.
    pub fn conjunction(pairs: Vec<TagValue>) -> Self {
        Query::And(pairs.into_iter().map(Query::Term).collect())
    }

    /// A full-text conjunction over search terms, i.e. the translation of a
    /// keyword search `S1 S2 … Sn` into `FULLTEXT/S1 ∧ … ∧ FULLTEXT/Sn`.
    pub fn fulltext(terms: &[&str]) -> Self {
        Query::And(
            terms
                .iter()
                .map(|t| Query::term(Tag::FullText, *t))
                .collect(),
        )
    }

    /// Number of term leaves in the query.
    pub fn term_count(&self) -> usize {
        match self {
            Query::Term(_) => 1,
            Query::And(qs) | Query::Or(qs) => qs.iter().map(Query::term_count).sum(),
            Query::AndNot { positive, negative } => positive.term_count() + negative.term_count(),
        }
    }

    /// Evaluates the query against `registry`, returning matching object
    /// ids in ascending order.
    pub fn evaluate(&self, registry: &IndexRegistry) -> Result<Vec<ObjectId>> {
        Ok(self.evaluate_set(registry)?.into_iter().collect())
    }

    fn evaluate_set(&self, registry: &IndexRegistry) -> Result<BTreeSet<ObjectId>> {
        match self {
            Query::Term(tv) => Ok(registry.lookup(&tv.tag, &tv.value)?.into_iter().collect()),
            Query::And(subs) => {
                if subs.is_empty() {
                    return Err(IndexError::InvalidQuery(
                        "empty conjunction matches nothing meaningful".to_string(),
                    ));
                }
                let mut result: Option<BTreeSet<ObjectId>> = None;
                for sub in subs {
                    let hits = sub.evaluate_set(registry)?;
                    result = Some(match result {
                        None => hits,
                        Some(acc) => acc.intersection(&hits).copied().collect(),
                    });
                    if matches!(&result, Some(s) if s.is_empty()) {
                        break;
                    }
                }
                Ok(result.unwrap_or_default())
            }
            Query::Or(subs) => {
                if subs.is_empty() {
                    return Err(IndexError::InvalidQuery(
                        "empty disjunction matches nothing meaningful".to_string(),
                    ));
                }
                let mut result = BTreeSet::new();
                for sub in subs {
                    result.extend(sub.evaluate_set(registry)?);
                }
                Ok(result)
            }
            Query::AndNot { positive, negative } => {
                let pos = positive.evaluate_set(registry)?;
                if pos.is_empty() {
                    return Ok(pos);
                }
                let neg = negative.evaluate_set(registry)?;
                Ok(pos.difference(&neg).copied().collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hfad_btree::TreeContext;
    use hfad_storage::{BuddyAllocator, MemDevice};

    use crate::keyvalue::KeyValueIndex;
    use crate::store::IndexStore;

    use super::*;

    fn registry() -> IndexRegistry {
        let device = Arc::new(MemDevice::new(65536, 512));
        let allocator = Arc::new(BuddyAllocator::new(1, 65535));
        let ctx = TreeContext::new(device, allocator);
        let registry = IndexRegistry::new();
        let kv = KeyValueIndex::new(ctx, "kv", None, 4).unwrap();
        // Photo library fixture: three photos with overlapping tags.
        kv.insert(&Tag::Udef, "beach", ObjectId(1)).unwrap();
        kv.insert(&Tag::Udef, "vacation", ObjectId(1)).unwrap();
        kv.insert(&Tag::User, "margo", ObjectId(1)).unwrap();
        kv.insert(&Tag::Udef, "beach", ObjectId(2)).unwrap();
        kv.insert(&Tag::User, "nick", ObjectId(2)).unwrap();
        kv.insert(&Tag::Udef, "vacation", ObjectId(3)).unwrap();
        kv.insert(&Tag::User, "margo", ObjectId(3)).unwrap();
        registry.register(Arc::new(kv));
        registry
    }

    #[test]
    fn single_term() {
        let r = registry();
        let q = Query::term(Tag::Udef, "beach");
        assert_eq!(q.evaluate(&r).unwrap(), vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(q.term_count(), 1);
    }

    #[test]
    fn conjunction_matches_paper_semantics() {
        let r = registry();
        let q = Query::conjunction(vec![TagValue::udef("beach"), TagValue::user("margo")]);
        assert_eq!(q.evaluate(&r).unwrap(), vec![ObjectId(1)]);
        // No query need uniquely define a data item: broader conjunctions
        // return multiple objects.
        let q = Query::conjunction(vec![TagValue::user("margo")]);
        assert_eq!(q.evaluate(&r).unwrap(), vec![ObjectId(1), ObjectId(3)]);
    }

    #[test]
    fn disjunction_unions() {
        let r = registry();
        let q = Query::Or(vec![
            Query::term(Tag::User, "nick"),
            Query::term(Tag::Udef, "vacation"),
        ]);
        assert_eq!(
            q.evaluate(&r).unwrap(),
            vec![ObjectId(1), ObjectId(2), ObjectId(3)]
        );
    }

    #[test]
    fn and_not_subtracts() {
        let r = registry();
        let q = Query::AndNot {
            positive: Box::new(Query::term(Tag::Udef, "vacation")),
            negative: Box::new(Query::term(Tag::Udef, "beach")),
        };
        assert_eq!(q.evaluate(&r).unwrap(), vec![ObjectId(3)]);
    }

    #[test]
    fn nested_boolean_query() {
        let r = registry();
        // (beach ∨ vacation) ∧ margo → {1, 3}
        let q = Query::And(vec![
            Query::Or(vec![
                Query::term(Tag::Udef, "beach"),
                Query::term(Tag::Udef, "vacation"),
            ]),
            Query::term(Tag::User, "margo"),
        ]);
        assert_eq!(q.evaluate(&r).unwrap(), vec![ObjectId(1), ObjectId(3)]);
        assert_eq!(q.term_count(), 3);
    }

    #[test]
    fn empty_and_or_are_invalid() {
        let r = registry();
        assert!(matches!(
            Query::And(vec![]).evaluate(&r),
            Err(IndexError::InvalidQuery(_))
        ));
        assert!(matches!(
            Query::Or(vec![]).evaluate(&r),
            Err(IndexError::InvalidQuery(_))
        ));
    }

    #[test]
    fn missing_terms_yield_empty_results() {
        let r = registry();
        let q = Query::conjunction(vec![TagValue::udef("nonexistent")]);
        assert!(q.evaluate(&r).unwrap().is_empty());
        let q = Query::And(vec![
            Query::term(Tag::Udef, "beach"),
            Query::term(Tag::Udef, "nonexistent"),
        ]);
        assert!(q.evaluate(&r).unwrap().is_empty());
    }
}

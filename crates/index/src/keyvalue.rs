//! The key/value index store.
//!
//! "A key/value store suffices for simple attributes" (§3.2): POSIX
//! pathnames, USER, UDEF and APP tags are all simple string attributes. The
//! postings live in B-trees keyed by an order-preserving composite of
//! `(tag, value, oid)`, so a lookup is one prefix scan. A reverse index
//! keyed by `(oid, tag, value)` supports removing every name of an object
//! when the object is deleted.
//!
//! The index is sharded: the posting space is split across `shards`
//! independent B-trees (selected by a hash of the tag and value), each
//! behind its own reader/writer lock. This is the "better indexing
//! structures with fewer hotspots" the paper appeals to in §2.3, and is
//! what experiment E2 compares against the hierarchical baseline's shared
//! ancestor directories.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use hfad_btree::codec::{decode_composite, encode_composite, prefix_upper_bound};
use hfad_btree::{BTree, TreeContext};
use hfad_osd::ObjectId;

use crate::error::Result;
use crate::store::{IndexStats, IndexStore};
use crate::tag::{Tag, TagValue};

/// Default number of independent shards.
pub const DEFAULT_SHARDS: usize = 16;

struct Shard {
    forward: RwLock<BTree>,
    reverse: RwLock<BTree>,
}

/// A sharded, B-tree backed key/value index.
pub struct KeyValueIndex {
    name: String,
    handled: Option<Vec<Tag>>,
    shards: Vec<Shard>,
    inserts: AtomicU64,
    removes: AtomicU64,
    lookups: AtomicU64,
    postings: AtomicU64,
}

/// Builds the forward posting key `(tag, value, oid)`.
fn forward_key(tag: &Tag, value: &str, oid: ObjectId) -> Vec<u8> {
    let inner = encode_composite(value.as_bytes(), &oid.to_key());
    encode_composite(tag.as_bytes(), &inner)
}

/// Builds the prefix matching every posting for `(tag, value)`.
fn value_prefix(tag: &Tag, value: &str) -> Vec<u8> {
    let inner = encode_composite(value.as_bytes(), &[]);
    encode_composite(tag.as_bytes(), &inner)
}

/// Builds the reverse posting key `(oid, tag, value)`.
fn reverse_key(oid: ObjectId, tag: &Tag, value: &str) -> Vec<u8> {
    let inner = encode_composite(tag.as_bytes(), value.as_bytes());
    encode_composite(&oid.to_key(), &inner)
}

/// Extracts the object id from a forward posting key.
fn oid_from_forward(key: &[u8]) -> Option<ObjectId> {
    if key.len() < 8 {
        return None;
    }
    ObjectId::from_key(&key[key.len() - 8..])
}

impl KeyValueIndex {
    /// Creates a sharded index named `name` handling `handled` tags
    /// (`None` means "handles every tag", useful as a catch-all).
    pub fn new(
        ctx: TreeContext,
        name: impl Into<String>,
        handled: Option<Vec<Tag>>,
        shards: usize,
    ) -> Result<Self> {
        let shards = shards.max(1);
        let mut shard_vec = Vec::with_capacity(shards);
        for _ in 0..shards {
            shard_vec.push(Shard {
                forward: RwLock::new(BTree::create(ctx.clone())?),
                reverse: RwLock::new(BTree::create(ctx.clone())?),
            });
        }
        Ok(KeyValueIndex {
            name: name.into(),
            handled,
            shards: shard_vec,
            inserts: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            postings: AtomicU64::new(0),
        })
    }

    /// Creates an index with the default shard count handling the simple
    /// attribute tags (POSIX, USER, UDEF, APP).
    pub fn simple_attributes(ctx: TreeContext) -> Result<Self> {
        KeyValueIndex::new(
            ctx,
            "keyvalue",
            Some(vec![Tag::Posix, Tag::User, Tag::Udef, Tag::App]),
            DEFAULT_SHARDS,
        )
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, tag: &Tag, value: &str) -> &Shard {
        let hash = hfad_storage::fnv1a(&[tag.as_bytes(), value.as_bytes()].concat());
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }
}

impl IndexStore for KeyValueIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn handles(&self, tag: &Tag) -> bool {
        match &self.handled {
            Some(tags) => tags.contains(tag),
            None => true,
        }
    }

    fn insert(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()> {
        let shard = self.shard_for(tag, value);
        let fresh = {
            let mut forward = shard.forward.write();
            forward
                .insert(&forward_key(tag, value, oid), &[])?
                .is_none()
        };
        {
            let mut reverse = shard.reverse.write();
            reverse.insert(&reverse_key(oid, tag, value), &[])?;
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if fresh {
            self.postings.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn remove(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()> {
        let shard = self.shard_for(tag, value);
        let existed = {
            let mut forward = shard.forward.write();
            forward.delete(&forward_key(tag, value, oid))?.is_some()
        };
        {
            let mut reverse = shard.reverse.write();
            reverse.delete(&reverse_key(oid, tag, value))?;
        }
        self.removes.fetch_add(1, Ordering::Relaxed);
        if existed {
            self.postings.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn lookup(&self, tag: &Tag, value: &str) -> Result<Vec<ObjectId>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_for(tag, value);
        let forward = shard.forward.read();
        let prefix = value_prefix(tag, value);
        let mut out = Vec::new();
        for (key, _) in forward.scan_prefix(&prefix)? {
            if let Some(oid) = oid_from_forward(&key) {
                out.push(oid);
            }
        }
        Ok(out)
    }

    fn remove_object(&self, oid: ObjectId) -> Result<()> {
        // The reverse index of every shard may hold names for this object.
        let prefix = encode_composite(&oid.to_key(), &[]);
        let upper = prefix_upper_bound(&prefix);
        for shard in &self.shards {
            let names: Vec<(Vec<u8>, Vec<u8>)> = {
                let reverse = shard.reverse.read();
                let mut collected = Vec::new();
                for entry in reverse.range(&prefix, upper.as_deref())? {
                    collected.push(entry?);
                }
                collected
            };
            for (key, _) in names {
                let Some((_, inner)) = decode_composite(&key) else {
                    continue;
                };
                let Some((tag_bytes, value_bytes)) = decode_composite(&inner) else {
                    continue;
                };
                let tag = Tag::parse(&String::from_utf8_lossy(&tag_bytes));
                let value = String::from_utf8_lossy(&value_bytes).to_string();
                self.remove(&tag, &value, oid)?;
            }
        }
        Ok(())
    }

    fn tags_of(&self, oid: ObjectId) -> Result<Vec<TagValue>> {
        let prefix = encode_composite(&oid.to_key(), &[]);
        let upper = prefix_upper_bound(&prefix);
        let mut out = Vec::new();
        for shard in &self.shards {
            let reverse = shard.reverse.read();
            for entry in reverse.range(&prefix, upper.as_deref())? {
                let (key, _) = entry?;
                let Some((_, inner)) = decode_composite(&key) else {
                    continue;
                };
                let Some((tag_bytes, value_bytes)) = decode_composite(&inner) else {
                    continue;
                };
                out.push(TagValue::new(
                    Tag::parse(&String::from_utf8_lossy(&tag_bytes)),
                    String::from_utf8_lossy(&value_bytes).to_string(),
                ));
            }
        }
        Ok(out)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            postings: self.postings.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hfad_storage::{BuddyAllocator, MemDevice};

    use super::*;

    fn ctx() -> TreeContext {
        let device = Arc::new(MemDevice::new(65536, 512));
        let allocator = Arc::new(BuddyAllocator::new(1, 65535));
        TreeContext::new(device, allocator)
    }

    fn index() -> KeyValueIndex {
        KeyValueIndex::simple_attributes(ctx()).unwrap()
    }

    #[test]
    fn insert_and_lookup_single() {
        let idx = index();
        idx.insert(&Tag::Posix, "/home/margo/mail.mbox", ObjectId(7))
            .unwrap();
        assert_eq!(
            idx.lookup(&Tag::Posix, "/home/margo/mail.mbox").unwrap(),
            vec![ObjectId(7)]
        );
        assert!(idx.lookup(&Tag::Posix, "/home/margo").unwrap().is_empty());
    }

    #[test]
    fn multiple_objects_per_value_sorted() {
        let idx = index();
        for oid in [5u64, 1, 9, 3] {
            idx.insert(&Tag::Udef, "vacation", ObjectId(oid)).unwrap();
        }
        assert_eq!(
            idx.lookup(&Tag::Udef, "vacation").unwrap(),
            vec![ObjectId(1), ObjectId(3), ObjectId(5), ObjectId(9)]
        );
    }

    #[test]
    fn values_do_not_collide_by_prefix() {
        let idx = index();
        idx.insert(&Tag::User, "nick", ObjectId(1)).unwrap();
        idx.insert(&Tag::User, "nickolas", ObjectId(2)).unwrap();
        assert_eq!(idx.lookup(&Tag::User, "nick").unwrap(), vec![ObjectId(1)]);
        assert_eq!(
            idx.lookup(&Tag::User, "nickolas").unwrap(),
            vec![ObjectId(2)]
        );
    }

    #[test]
    fn same_value_different_tags_are_distinct() {
        let idx = index();
        idx.insert(&Tag::User, "margo", ObjectId(1)).unwrap();
        idx.insert(&Tag::Udef, "margo", ObjectId(2)).unwrap();
        assert_eq!(idx.lookup(&Tag::User, "margo").unwrap(), vec![ObjectId(1)]);
        assert_eq!(idx.lookup(&Tag::Udef, "margo").unwrap(), vec![ObjectId(2)]);
    }

    #[test]
    fn remove_specific_posting() {
        let idx = index();
        idx.insert(&Tag::App, "quicken", ObjectId(1)).unwrap();
        idx.insert(&Tag::App, "quicken", ObjectId(2)).unwrap();
        idx.remove(&Tag::App, "quicken", ObjectId(1)).unwrap();
        assert_eq!(idx.lookup(&Tag::App, "quicken").unwrap(), vec![ObjectId(2)]);
        // Removing a missing posting is a no-op.
        idx.remove(&Tag::App, "quicken", ObjectId(42)).unwrap();
        assert_eq!(idx.stats().postings, 1);
    }

    #[test]
    fn remove_object_deletes_every_name() {
        let idx = index();
        idx.insert(&Tag::Posix, "/photos/beach.jpg", ObjectId(3))
            .unwrap();
        idx.insert(&Tag::Udef, "vacation", ObjectId(3)).unwrap();
        idx.insert(&Tag::Udef, "family", ObjectId(3)).unwrap();
        idx.insert(&Tag::Udef, "vacation", ObjectId(4)).unwrap();
        assert_eq!(idx.tags_of(ObjectId(3)).unwrap().len(), 3);
        idx.remove_object(ObjectId(3)).unwrap();
        assert!(idx.tags_of(ObjectId(3)).unwrap().is_empty());
        assert!(idx
            .lookup(&Tag::Posix, "/photos/beach.jpg")
            .unwrap()
            .is_empty());
        // Other objects' postings survive.
        assert_eq!(
            idx.lookup(&Tag::Udef, "vacation").unwrap(),
            vec![ObjectId(4)]
        );
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let idx = index();
        idx.insert(&Tag::User, "nick", ObjectId(1)).unwrap();
        idx.insert(&Tag::User, "nick", ObjectId(1)).unwrap();
        assert_eq!(idx.lookup(&Tag::User, "nick").unwrap(), vec![ObjectId(1)]);
        assert_eq!(idx.stats().postings, 1);
        assert_eq!(idx.stats().inserts, 2);
    }

    #[test]
    fn stats_track_operations() {
        let idx = index();
        idx.insert(&Tag::User, "a", ObjectId(1)).unwrap();
        idx.lookup(&Tag::User, "a").unwrap();
        idx.lookup(&Tag::User, "b").unwrap();
        idx.remove(&Tag::User, "a", ObjectId(1)).unwrap();
        let s = idx.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.removes, 1);
        assert_eq!(s.postings, 0);
    }

    #[test]
    fn handles_respects_tag_list() {
        let idx = index();
        assert!(idx.handles(&Tag::Posix));
        assert!(!idx.handles(&Tag::FullText));
        let catch_all = KeyValueIndex::new(ctx(), "all", None, 2).unwrap();
        assert!(catch_all.handles(&Tag::FullText));
        assert!(catch_all.handles(&Tag::Custom("IMAGE".into())));
        assert_eq!(catch_all.shard_count(), 2);
    }

    #[test]
    fn many_postings_across_shards() {
        let idx = KeyValueIndex::new(ctx(), "kv", None, 8).unwrap();
        for i in 0..500u64 {
            idx.insert(&Tag::Posix, &format!("/dir/file{i}"), ObjectId(i))
                .unwrap();
        }
        assert_eq!(idx.stats().postings, 500);
        for i in (0..500u64).step_by(97) {
            assert_eq!(
                idx.lookup(&Tag::Posix, &format!("/dir/file{i}")).unwrap(),
                vec![ObjectId(i)]
            );
        }
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let idx = Arc::new(index());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let oid = ObjectId(t * 1000 + i);
                    idx.insert(&Tag::Udef, &format!("tag-{t}-{i}"), oid)
                        .unwrap();
                    assert_eq!(
                        idx.lookup(&Tag::Udef, &format!("tag-{t}-{i}")).unwrap(),
                        vec![oid]
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.stats().postings, 400);
    }

    #[test]
    fn unicode_values_round_trip() {
        let idx = index();
        idx.insert(&Tag::Udef, "семейные фото ☀", ObjectId(11))
            .unwrap();
        assert_eq!(
            idx.lookup(&Tag::Udef, "семейные фото ☀").unwrap(),
            vec![ObjectId(11)]
        );
        let tags = idx.tags_of(ObjectId(11)).unwrap();
        assert_eq!(tags[0].value, "семейные фото ☀");
    }
}

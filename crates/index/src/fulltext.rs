//! The full-text index store.
//!
//! The paper ports Lucene on top of the storage allocator for full-text
//! search (§3.4). This module provides the part of that functionality hFAD
//! actually relies on: a persistent inverted index mapping terms to object
//! ids, fed by a simple tokenizer, with conjunctive multi-term queries
//! ("the result of such an operation is the conjunction of the results of
//! an index lookup for each element in the vector", §3.1.1).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use hfad_btree::TreeContext;
use hfad_osd::ObjectId;

use crate::error::Result;
use crate::keyvalue::KeyValueIndex;
use crate::store::{IndexStats, IndexStore};
use crate::tag::{Tag, TagValue};

/// Splits text into lower-case alphanumeric terms.
///
/// Terms shorter than two characters are dropped; everything else
/// (punctuation, whitespace) is a separator. This mirrors a basic Lucene
/// `StandardAnalyzer` pipeline without stemming.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut terms = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            terms.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        terms.push(current);
    }
    terms.retain(|t| t.len() >= 2);
    terms
}

/// Unique terms of a document, in sorted order.
pub fn unique_terms(text: &str) -> BTreeSet<String> {
    tokenize(text).into_iter().collect()
}

/// A persistent inverted index over object contents.
pub struct FullTextIndex {
    postings: KeyValueIndex,
    documents_indexed: AtomicU64,
    terms_indexed: AtomicU64,
}

impl FullTextIndex {
    /// Creates a full-text index with `shards` independent posting shards.
    pub fn new(ctx: TreeContext, shards: usize) -> Result<Self> {
        Ok(FullTextIndex {
            postings: KeyValueIndex::new(ctx, "fulltext", Some(vec![Tag::FullText]), shards)?,
            documents_indexed: AtomicU64::new(0),
            terms_indexed: AtomicU64::new(0),
        })
    }

    /// Indexes the textual content of an object, adding one posting per
    /// unique term.
    pub fn index_document(&self, oid: ObjectId, text: &str) -> Result<usize> {
        let terms = unique_terms(text);
        for term in &terms {
            self.postings.insert(&Tag::FullText, term, oid)?;
        }
        self.documents_indexed.fetch_add(1, Ordering::Relaxed);
        self.terms_indexed
            .fetch_add(terms.len() as u64, Ordering::Relaxed);
        Ok(terms.len())
    }

    /// Removes every posting for `oid` (used when an object is deleted or
    /// about to be re-indexed).
    pub fn remove_document(&self, oid: ObjectId) -> Result<()> {
        self.postings.remove_object(oid)
    }

    /// Objects containing `term`.
    pub fn lookup_term(&self, term: &str) -> Result<Vec<ObjectId>> {
        let normalized = tokenize(term);
        match normalized.first() {
            Some(t) => self.postings.lookup(&Tag::FullText, t),
            None => Ok(Vec::new()),
        }
    }

    /// Objects containing *all* of `terms` (the paper's conjunction
    /// semantics). An empty term list yields an empty result.
    pub fn query_all(&self, terms: &[&str]) -> Result<Vec<ObjectId>> {
        let mut result: Option<BTreeSet<ObjectId>> = None;
        for term in terms {
            let hits: BTreeSet<ObjectId> = self.lookup_term(term)?.into_iter().collect();
            result = Some(match result {
                None => hits,
                Some(acc) => acc.intersection(&hits).copied().collect(),
            });
            if matches!(&result, Some(set) if set.is_empty()) {
                break;
            }
        }
        Ok(result.unwrap_or_default().into_iter().collect())
    }

    /// Number of documents indexed since creation.
    pub fn documents_indexed(&self) -> u64 {
        self.documents_indexed.load(Ordering::Relaxed)
    }

    /// Total unique-term postings added since creation.
    pub fn terms_indexed(&self) -> u64 {
        self.terms_indexed.load(Ordering::Relaxed)
    }
}

impl IndexStore for FullTextIndex {
    fn name(&self) -> &str {
        "fulltext"
    }

    fn handles(&self, tag: &Tag) -> bool {
        *tag == Tag::FullText
    }

    fn insert(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()> {
        debug_assert_eq!(*tag, Tag::FullText);
        // A value arriving through the generic interface is treated as raw
        // text: it is tokenized so that multi-word values behave like
        // content.
        for term in unique_terms(value) {
            self.postings.insert(&Tag::FullText, &term, oid)?;
        }
        Ok(())
    }

    fn remove(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()> {
        debug_assert_eq!(*tag, Tag::FullText);
        for term in unique_terms(value) {
            self.postings.remove(&Tag::FullText, &term, oid)?;
        }
        Ok(())
    }

    fn lookup(&self, tag: &Tag, value: &str) -> Result<Vec<ObjectId>> {
        debug_assert_eq!(*tag, Tag::FullText);
        let terms: Vec<String> = unique_terms(value).into_iter().collect();
        let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        self.query_all(&refs)
    }

    fn remove_object(&self, oid: ObjectId) -> Result<()> {
        self.remove_document(oid)
    }

    fn tags_of(&self, oid: ObjectId) -> Result<Vec<TagValue>> {
        self.postings.tags_of(oid)
    }

    fn stats(&self) -> IndexStats {
        self.postings.stats()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hfad_storage::{BuddyAllocator, MemDevice};

    use super::*;

    fn ctx() -> TreeContext {
        let device = Arc::new(MemDevice::new(65536, 512));
        let allocator = Arc::new(BuddyAllocator::new(1, 65535));
        TreeContext::new(device, allocator)
    }

    fn index() -> FullTextIndex {
        FullTextIndex::new(ctx(), 4).unwrap()
    }

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(
            tokenize("Hello, World! HFS+ is dead."),
            vec!["hello", "world", "hfs", "is", "dead"]
        );
        assert_eq!(tokenize("a b c"), Vec::<String>::new());
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("file2009 naming"), vec!["file2009", "naming"]);
    }

    #[test]
    fn unique_terms_deduplicates() {
        let terms = unique_terms("the cat and the hat and the cat");
        assert_eq!(
            terms.into_iter().collect::<Vec<_>>(),
            vec!["and", "cat", "hat", "the"]
        );
    }

    #[test]
    fn index_and_query_single_term() {
        let idx = index();
        idx.index_document(ObjectId(1), "hierarchical file systems are dead")
            .unwrap();
        idx.index_document(ObjectId(2), "long live the tagged file system")
            .unwrap();
        assert_eq!(
            idx.lookup_term("file").unwrap(),
            vec![ObjectId(1), ObjectId(2)]
        );
        assert_eq!(idx.lookup_term("dead").unwrap(), vec![ObjectId(1)]);
        assert_eq!(idx.lookup_term("TAGGED").unwrap(), vec![ObjectId(2)]);
        assert!(idx.lookup_term("absent").unwrap().is_empty());
    }

    #[test]
    fn conjunction_intersects_terms() {
        let idx = index();
        idx.index_document(ObjectId(1), "margo beach vacation photo")
            .unwrap();
        idx.index_document(ObjectId(2), "nick beach workshop photo")
            .unwrap();
        idx.index_document(ObjectId(3), "margo workshop slides")
            .unwrap();
        assert_eq!(
            idx.query_all(&["beach", "photo"]).unwrap(),
            vec![ObjectId(1), ObjectId(2)]
        );
        assert_eq!(
            idx.query_all(&["margo", "beach"]).unwrap(),
            vec![ObjectId(1)]
        );
        assert!(idx.query_all(&["margo", "nick"]).unwrap().is_empty());
        assert!(idx.query_all(&[]).unwrap().is_empty());
    }

    #[test]
    fn remove_document_forgets_all_terms() {
        let idx = index();
        idx.index_document(ObjectId(1), "ephemeral words vanish")
            .unwrap();
        idx.index_document(ObjectId(2), "permanent words remain")
            .unwrap();
        idx.remove_document(ObjectId(1)).unwrap();
        assert!(idx.lookup_term("ephemeral").unwrap().is_empty());
        assert_eq!(idx.lookup_term("words").unwrap(), vec![ObjectId(2)]);
    }

    #[test]
    fn counters_track_documents_and_terms() {
        let idx = index();
        let n = idx
            .index_document(ObjectId(1), "alpha beta beta gamma")
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(idx.documents_indexed(), 1);
        assert_eq!(idx.terms_indexed(), 3);
    }

    #[test]
    fn index_store_interface_tokenizes_values() {
        let idx = index();
        idx.insert(&Tag::FullText, "annual report 2009", ObjectId(5))
            .unwrap();
        assert_eq!(
            idx.lookup(&Tag::FullText, "report").unwrap(),
            vec![ObjectId(5)]
        );
        assert_eq!(
            idx.lookup(&Tag::FullText, "annual 2009").unwrap(),
            vec![ObjectId(5)]
        );
        idx.remove(&Tag::FullText, "annual report 2009", ObjectId(5))
            .unwrap();
        assert!(idx.lookup(&Tag::FullText, "report").unwrap().is_empty());
        assert!(idx.handles(&Tag::FullText));
        assert!(!idx.handles(&Tag::Posix));
    }

    #[test]
    fn large_corpus_queries_remain_correct() {
        let idx = index();
        for i in 0..300u64 {
            let text = format!(
                "document number {i} about {} and {}",
                if i % 2 == 0 { "storage" } else { "networks" },
                if i % 3 == 0 { "indexing" } else { "caching" },
            );
            idx.index_document(ObjectId(i), &text).unwrap();
        }
        let hits = idx.query_all(&["storage", "indexing"]).unwrap();
        // Multiples of 6 are both even and divisible by 3.
        assert_eq!(hits.len(), 50);
        assert!(hits.iter().all(|o| o.as_u64() % 6 == 0));
    }
}

//! Tags — the naming vocabulary of hFAD.
//!
//! "An object is named by one or more tag/value pairs. A tag tells hFAD how
//! to interpret the value and in which of multiple indexes to search for
//! the value" (§3.1.1). The variants reproduce the paper's Table 1:
//!
//! | Use          | Tag        | Value              |
//! |--------------|------------|--------------------|
//! | POSIX        | `POSIX`    | pathname           |
//! | Search       | `FULLTEXT` | term               |
//! | Manual       | `USER`     | logname            |
//! |              | `UDEF`     | annotations        |
//! | Applications | `APP`      | application name   |
//! |              | `USER`     | logname            |
//! | FastPath     | `ID`       | object identifier  |

use core::fmt;

/// A naming tag, per Table 1 of the paper, plus an extension point for
/// plug-in index types (open question 1 in §4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tag {
    /// A POSIX pathname (the backwards-compatibility veneer).
    Posix,
    /// A full-text search term.
    FullText,
    /// The login name of the user who manually tagged the object.
    User,
    /// A user-defined annotation.
    Udef,
    /// The application that created or tagged the object.
    App,
    /// A raw object identifier — the "FastPath" that bypasses every index.
    Id,
    /// An extension tag handled by a plug-in index store (e.g. `IMAGE`).
    Custom(String),
}

impl Tag {
    /// Canonical upper-case name used in keys and display output.
    pub fn name(&self) -> &str {
        match self {
            Tag::Posix => "POSIX",
            Tag::FullText => "FULLTEXT",
            Tag::User => "USER",
            Tag::Udef => "UDEF",
            Tag::App => "APP",
            Tag::Id => "ID",
            Tag::Custom(name) => name,
        }
    }

    /// Parses a canonical name back into a tag.
    pub fn parse(name: &str) -> Tag {
        match name {
            "POSIX" => Tag::Posix,
            "FULLTEXT" => Tag::FullText,
            "USER" => Tag::User,
            "UDEF" => Tag::Udef,
            "APP" => Tag::App,
            "ID" => Tag::Id,
            other => Tag::Custom(other.to_string()),
        }
    }

    /// Key prefix bytes for this tag.
    pub fn as_bytes(&self) -> &[u8] {
        self.name().as_bytes()
    }

    /// The built-in tags from Table 1 (excluding plug-in tags).
    pub fn builtin() -> [Tag; 6] {
        [
            Tag::Posix,
            Tag::FullText,
            Tag::User,
            Tag::Udef,
            Tag::App,
            Tag::Id,
        ]
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single `tag/value` naming pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TagValue {
    /// The tag (index selector).
    pub tag: Tag,
    /// The value to look up in that index.
    pub value: String,
}

impl TagValue {
    /// Creates a tag/value pair.
    pub fn new(tag: Tag, value: impl Into<String>) -> Self {
        TagValue {
            tag,
            value: value.into(),
        }
    }

    /// Shorthand for a POSIX pathname pair.
    pub fn posix(path: impl Into<String>) -> Self {
        TagValue::new(Tag::Posix, path)
    }

    /// Shorthand for a full-text term pair.
    pub fn fulltext(term: impl Into<String>) -> Self {
        TagValue::new(Tag::FullText, term)
    }

    /// Shorthand for a user tag pair.
    pub fn user(logname: impl Into<String>) -> Self {
        TagValue::new(Tag::User, logname)
    }

    /// Shorthand for a user-defined annotation pair.
    pub fn udef(annotation: impl Into<String>) -> Self {
        TagValue::new(Tag::Udef, annotation)
    }

    /// Shorthand for an application tag pair.
    pub fn app(name: impl Into<String>) -> Self {
        TagValue::new(Tag::App, name)
    }
}

impl fmt::Display for TagValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.tag, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for tag in Tag::builtin() {
            assert_eq!(Tag::parse(tag.name()), tag);
        }
        assert_eq!(Tag::parse("IMAGE"), Tag::Custom("IMAGE".to_string()));
        assert_eq!(Tag::Custom("IMAGE".into()).name(), "IMAGE");
    }

    #[test]
    fn display_matches_table_1() {
        assert_eq!(Tag::Posix.to_string(), "POSIX");
        assert_eq!(Tag::FullText.to_string(), "FULLTEXT");
        assert_eq!(Tag::User.to_string(), "USER");
        assert_eq!(Tag::Udef.to_string(), "UDEF");
        assert_eq!(Tag::App.to_string(), "APP");
        assert_eq!(Tag::Id.to_string(), "ID");
    }

    #[test]
    fn tag_value_constructors() {
        assert_eq!(
            TagValue::posix("/home/margo/mail"),
            TagValue::new(Tag::Posix, "/home/margo/mail")
        );
        assert_eq!(TagValue::fulltext("searching").tag, Tag::FullText);
        assert_eq!(TagValue::user("nick").value, "nick");
        assert_eq!(TagValue::udef("vacation").tag, Tag::Udef);
        assert_eq!(TagValue::app("quicken").tag, Tag::App);
        assert_eq!(
            TagValue::posix("/a/b").to_string(),
            "POSIX//a/b".to_string()
        );
    }
}

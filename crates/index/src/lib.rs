//! # hfad-index
//!
//! The extensible index stores of the hFAD reproduction ("Hierarchical File
//! Systems Are Dead", Seltzer & Murphy, HotOS 2009, §3.2).
//!
//! hFAD replaces the hierarchical namespace with indices mapping tag/value
//! pairs to object ids:
//!
//! * [`tag`] — the tag vocabulary of Table 1 (`POSIX`, `FULLTEXT`, `USER`,
//!   `UDEF`, `APP`, `ID`) plus custom plug-in tags.
//! * [`store`] — the [`store::IndexStore`] trait and the
//!   [`store::IndexRegistry`] that routes tags to stores.
//! * [`keyvalue`] — a sharded, B-tree backed key/value index for simple
//!   attributes.
//! * [`fulltext`] — an inverted full-text index (the Lucene role in the
//!   paper) with a simple tokenizer and conjunctive queries.
//! * [`query`] — conjunctive queries (the paper's semantics) plus the
//!   boolean-query extension from §4.
//! * [`lazy`] — background lazy indexing threads (§3.4).

pub mod error;
pub mod fulltext;
pub mod keyvalue;
pub mod lazy;
pub mod query;
pub mod store;
pub mod tag;

pub use error::{IndexError, Result};
pub use fulltext::{tokenize, unique_terms, FullTextIndex};
pub use keyvalue::{KeyValueIndex, DEFAULT_SHARDS};
pub use lazy::{
    BackgroundExecutor, LazyConfig, LazyIndexer, LazyStats, OverflowPolicy, SubmitError,
    DEFAULT_LAZY_CAPACITY,
};
pub use query::Query;
pub use store::{IndexRegistry, IndexStats, IndexStore};
pub use tag::{Tag, TagValue};

//! Error types for the index stores.

use core::fmt;

use hfad_btree::BTreeError;
use hfad_osd::OsdError;
use hfad_storage::StorageError;

/// Errors produced by index stores and query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Error from the underlying device or allocator.
    Storage(StorageError),
    /// Error from a posting B-tree.
    BTree(BTreeError),
    /// Error from the OSD layer (e.g. while lazily reading an object to
    /// index its content).
    Osd(OsdError),
    /// No registered index store handles the given tag.
    NoIndexForTag(String),
    /// A query was structurally invalid (e.g. empty conjunction).
    InvalidQuery(String),
    /// The background indexer has shut down and cannot accept work.
    IndexerStopped,
    /// The background indexer's bounded queue is at capacity and the
    /// overflow policy rejects rather than blocks.
    QueueFull,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::BTree(e) => write!(f, "b-tree error: {e}"),
            IndexError::Osd(e) => write!(f, "osd error: {e}"),
            IndexError::NoIndexForTag(tag) => write!(f, "no index store handles tag {tag}"),
            IndexError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            IndexError::IndexerStopped => write!(f, "background indexer has stopped"),
            IndexError::QueueFull => write!(f, "background indexer queue is full"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        IndexError::Storage(e)
    }
}

impl From<BTreeError> for IndexError {
    fn from(e: BTreeError) -> Self {
        IndexError::BTree(e)
    }
}

impl From<OsdError> for IndexError {
    fn from(e: OsdError) -> Self {
        IndexError::Osd(e)
    }
}

/// Convenience alias used throughout the index crate.
pub type Result<T> = std::result::Result<T, IndexError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(IndexError::NoIndexForTag("IMAGE".into())
            .to_string()
            .contains("IMAGE"));
        let e: IndexError = BTreeError::EmptyKey.into();
        assert!(matches!(e, IndexError::BTree(_)));
        let e: IndexError = StorageError::ZeroAllocation.into();
        assert!(matches!(e, IndexError::Storage(_)));
        let e: IndexError = OsdError::NoSuchObject(1).into();
        assert!(matches!(e, IndexError::Osd(_)));
    }
}

//! Lazy, background full-text indexing.
//!
//! The paper: "we use background threads to perform lazy full-text
//! indexing" (§3.4). [`LazyIndexer`] accepts `(object, text)` work and
//! processes it in the background; callers continue immediately.
//! Experiment E4 compares the ingest throughput of this lazy path against
//! synchronous (eager) indexing.
//!
//! Two execution backends are supported:
//!
//! * **Own pool** ([`LazyIndexer::new`] / [`LazyIndexer::with_config`]) —
//!   worker threads fed by a **bounded** channel. The seed design used an
//!   unbounded queue, so a producer faster than the indexer grew memory
//!   without limit; now [`LazyConfig::capacity`] bounds the backlog and
//!   [`OverflowPolicy`] picks between blocking the producer and rejecting
//!   the item (rejections are counted in [`LazyStats::rejected`]).
//! * **Shared executor** ([`LazyIndexer::with_executor`]) — no private
//!   threads; each work item is submitted to a [`BackgroundExecutor`]
//!   (in practice the async I/O engine's `Index` priority class), so
//!   indexing shares one scheduler with read-ahead and write-behind and
//!   inherits the executor's bounded admission as its backpressure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender, TrySendError};

use hfad_osd::ObjectId;

use crate::error::{IndexError, Result};
use crate::fulltext::FullTextIndex;

/// What a producer experiences when the lazy-index queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the producer until the queue has room (default: ingest slows
    /// to the indexer's pace instead of growing memory).
    #[default]
    Block,
    /// Fail the enqueue with [`IndexError::QueueFull`]; the caller decides
    /// whether to retry, drop, or index synchronously.
    Reject,
}

/// Configuration for a [`LazyIndexer`] running its own worker pool.
#[derive(Debug, Clone, Copy)]
pub struct LazyConfig {
    /// Background worker threads (minimum 1).
    pub workers: usize,
    /// Maximum queued work items; `0` means unbounded (the seed
    /// behaviour, kept for ablation only).
    pub capacity: usize,
    /// Producer behaviour at capacity.
    pub policy: OverflowPolicy,
}

impl Default for LazyConfig {
    fn default() -> Self {
        LazyConfig {
            workers: 1,
            capacity: DEFAULT_LAZY_CAPACITY,
            policy: OverflowPolicy::Block,
        }
    }
}

/// Default bound on the lazy-index backlog.
pub const DEFAULT_LAZY_CAPACITY: usize = 4096;

// The executor abstraction lives in `hfad_storage` at the bottom of the
// dependency graph (the OSD's journal checkpointer shares it); re-export
// it so existing `hfad_index::BackgroundExecutor` consumers keep working.
pub use hfad_storage::{BackgroundExecutor, SubmitError};

enum WorkItem {
    Index { oid: ObjectId, text: String },
    Remove { oid: ObjectId },
    Shutdown,
}

/// Counters describing the indexer's progress.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LazyStats {
    /// Work items accepted.
    pub enqueued: u64,
    /// Work items fully processed.
    pub completed: u64,
    /// Work items that failed (the error is recorded and the worker moves
    /// on; failures never take the pipeline down).
    pub failed: u64,
    /// Work items refused at the queue boundary ([`OverflowPolicy::Reject`]
    /// or a full [`BackgroundExecutor`]); never counted in `enqueued`.
    pub rejected: u64,
}

enum Backend {
    Pool {
        sender: Option<Sender<WorkItem>>,
        workers: Vec<JoinHandle<()>>,
        policy: OverflowPolicy,
    },
    Executor {
        executor: Arc<dyn BackgroundExecutor>,
        stopped: AtomicBool,
    },
}

/// Background lazy indexing over a shared [`FullTextIndex`].
pub struct LazyIndexer {
    index: Arc<FullTextIndex>,
    backend: Backend,
    enqueued: AtomicU64,
    rejected: AtomicU64,
    completed: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
}

impl LazyIndexer {
    /// Spawns `workers` background threads indexing into `index`, with the
    /// default bounded queue ([`DEFAULT_LAZY_CAPACITY`], blocking).
    pub fn new(index: Arc<FullTextIndex>, workers: usize) -> Self {
        Self::with_config(
            index,
            LazyConfig {
                workers,
                ..Default::default()
            },
        )
    }

    /// Spawns a worker pool with explicit queue capacity and overflow
    /// policy.
    pub fn with_config(index: Arc<FullTextIndex>, config: LazyConfig) -> Self {
        let workers = config.workers.max(1);
        let (sender, receiver) = if config.capacity == 0 {
            unbounded::<WorkItem>()
        } else {
            // Room for the per-worker shutdown sentinels on top of the
            // configured work capacity, so `shutdown` never blocks.
            bounded::<WorkItem>(config.capacity + workers)
        };
        let completed = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let receiver = receiver.clone();
            let index = Arc::clone(&index);
            let completed = Arc::clone(&completed);
            let failed = Arc::clone(&failed);
            handles.push(std::thread::spawn(move || {
                while let Ok(item) = receiver.recv() {
                    match item {
                        WorkItem::Index { oid, text } => {
                            match index.index_document(oid, &text) {
                                Ok(_) => completed.fetch_add(1, Ordering::Relaxed),
                                Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        WorkItem::Remove { oid } => {
                            match index.remove_document(oid) {
                                Ok(_) => completed.fetch_add(1, Ordering::Relaxed),
                                Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        WorkItem::Shutdown => break,
                    }
                }
            }));
        }
        LazyIndexer {
            index,
            backend: Backend::Pool {
                sender: Some(sender),
                workers: handles,
                policy: config.policy,
            },
            enqueued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed,
            failed,
        }
    }

    /// Creates an indexer with **no threads of its own**: every work item
    /// becomes a job on `executor` (the async engine's `Index` class).
    /// Backpressure is the executor's bounded admission — a refused job
    /// surfaces as [`IndexError::QueueFull`] and a rejection count.
    pub fn with_executor(index: Arc<FullTextIndex>, executor: Arc<dyn BackgroundExecutor>) -> Self {
        LazyIndexer {
            index,
            backend: Backend::Executor {
                executor,
                stopped: AtomicBool::new(false),
            },
            enqueued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: Arc::new(AtomicU64::new(0)),
            failed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The full-text index the workers feed.
    pub fn index(&self) -> &Arc<FullTextIndex> {
        &self.index
    }

    /// Routes one work item to the backend, keeping the accounting
    /// invariant: exactly one of `enqueued`/`rejected` grows per call.
    fn dispatch(&self, item: WorkItem) -> Result<()> {
        match &self.backend {
            Backend::Pool { sender, policy, .. } => {
                let sender = sender.as_ref().ok_or(IndexError::IndexerStopped)?;
                match policy {
                    OverflowPolicy::Block => {
                        sender.send(item).map_err(|_| IndexError::IndexerStopped)?
                    }
                    OverflowPolicy::Reject => sender.try_send(item).map_err(|e| match e {
                        TrySendError::Full(_) => {
                            self.rejected.fetch_add(1, Ordering::Relaxed);
                            IndexError::QueueFull
                        }
                        TrySendError::Disconnected(_) => IndexError::IndexerStopped,
                    })?,
                }
            }
            Backend::Executor { executor, stopped } => {
                if stopped.load(Ordering::Acquire) {
                    return Err(IndexError::IndexerStopped);
                }
                let index = Arc::clone(&self.index);
                let completed = Arc::clone(&self.completed);
                let failed = Arc::clone(&self.failed);
                let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                    let outcome = match item {
                        WorkItem::Index { oid, text } => {
                            index.index_document(oid, &text).map(|_| ())
                        }
                        WorkItem::Remove { oid } => index.remove_document(oid).map(|_| ()),
                        WorkItem::Shutdown => Ok(()),
                    };
                    match outcome {
                        Ok(()) => completed.fetch_add(1, Ordering::Relaxed),
                        Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                    };
                });
                executor.submit_background(job).map_err(|e| match e {
                    SubmitError::Full => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        IndexError::QueueFull
                    }
                    SubmitError::Stopped => IndexError::IndexerStopped,
                })?;
            }
        }
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Enqueues a document for indexing and returns immediately (or, at a
    /// full bounded queue under [`OverflowPolicy::Block`], once there is
    /// room).
    pub fn enqueue(&self, oid: ObjectId, text: impl Into<String>) -> Result<()> {
        self.dispatch(WorkItem::Index {
            oid,
            text: text.into(),
        })
    }

    /// Enqueues removal of every posting for `oid`.
    pub fn enqueue_remove(&self, oid: ObjectId) -> Result<()> {
        self.dispatch(WorkItem::Remove { oid })
    }

    /// Number of items accepted but not yet processed.
    pub fn backlog(&self) -> u64 {
        let s = self.stats();
        s.enqueued - s.completed - s.failed
    }

    /// Blocks until every item enqueued so far has been processed.
    pub fn drain(&self) {
        while self.backlog() > 0 {
            std::thread::yield_now();
        }
    }

    /// Progress counters.
    pub fn stats(&self) -> LazyStats {
        LazyStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting work. Pool mode joins the worker threads after the
    /// current backlog is processed; executor mode leaves already-submitted
    /// jobs to finish on the shared executor.
    pub fn shutdown(&mut self) {
        match &mut self.backend {
            Backend::Pool {
                sender, workers, ..
            } => {
                if let Some(sender) = sender.take() {
                    for _ in 0..workers.len() {
                        let _ = sender.send(WorkItem::Shutdown);
                    }
                }
                for handle in workers.drain(..) {
                    let _ = handle.join();
                }
            }
            Backend::Executor { stopped, .. } => {
                stopped.store(true, Ordering::Release);
            }
        }
    }
}

impl Drop for LazyIndexer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hfad_btree::TreeContext;
    use hfad_storage::{BuddyAllocator, MemDevice};

    use super::*;

    fn fulltext() -> Arc<FullTextIndex> {
        let device = Arc::new(MemDevice::new(65536, 512));
        let allocator = Arc::new(BuddyAllocator::new(1, 65535));
        Arc::new(FullTextIndex::new(TreeContext::new(device, allocator), 4).unwrap())
    }

    #[test]
    fn background_indexing_eventually_visible() {
        let indexer = LazyIndexer::new(fulltext(), 2);
        for i in 0..50u64 {
            indexer
                .enqueue(ObjectId(i), format!("document {i} about lazy indexing"))
                .unwrap();
        }
        indexer.drain();
        let stats = indexer.stats();
        assert_eq!(stats.enqueued, 50);
        assert_eq!(stats.completed, 50);
        assert_eq!(stats.failed, 0);
        assert_eq!(indexer.index().lookup_term("lazy").unwrap().len(), 50);
        assert_eq!(indexer.index().documents_indexed(), 50);
    }

    #[test]
    fn enqueue_remove_deletes_postings() {
        let indexer = LazyIndexer::new(fulltext(), 1);
        indexer.enqueue(ObjectId(1), "transient content").unwrap();
        indexer.drain();
        assert_eq!(indexer.index().lookup_term("transient").unwrap().len(), 1);
        indexer.enqueue_remove(ObjectId(1)).unwrap();
        indexer.drain();
        assert!(indexer.index().lookup_term("transient").unwrap().is_empty());
    }

    #[test]
    fn shutdown_then_enqueue_fails() {
        let mut indexer = LazyIndexer::new(fulltext(), 1);
        indexer.enqueue(ObjectId(1), "before shutdown").unwrap();
        indexer.shutdown();
        assert!(matches!(
            indexer.enqueue(ObjectId(2), "after shutdown"),
            Err(IndexError::IndexerStopped)
        ));
        // Work submitted before shutdown was still completed.
        assert_eq!(indexer.index().lookup_term("before").unwrap().len(), 1);
    }

    #[test]
    fn many_producers_one_pool() {
        let indexer = Arc::new(LazyIndexer::new(fulltext(), 4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let indexer = Arc::clone(&indexer);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    indexer
                        .enqueue(ObjectId(t * 100 + i), format!("thread {t} item {i} shared"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        indexer.drain();
        assert_eq!(indexer.index().lookup_term("shared").unwrap().len(), 100);
    }

    #[test]
    fn reject_policy_counts_rejections() {
        // One worker parked on a slow-to-index first document cannot drain
        // the queue, so with capacity 2 and Reject the producer sees
        // QueueFull once the queue is at capacity.
        let indexer = LazyIndexer::with_config(
            fulltext(),
            LazyConfig {
                workers: 1,
                capacity: 2,
                policy: OverflowPolicy::Reject,
            },
        );
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for i in 0..64u64 {
            match indexer.enqueue(ObjectId(i), format!("burst item {i}")) {
                Ok(()) => accepted += 1,
                Err(IndexError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected > 0, "a burst of 64 into capacity 2 must overflow");
        let stats = indexer.stats();
        assert_eq!(stats.enqueued, accepted);
        assert_eq!(stats.rejected, rejected);
        indexer.drain();
        assert_eq!(indexer.stats().completed, accepted);
    }

    #[test]
    fn block_policy_bounds_backlog_without_losing_work() {
        let indexer = LazyIndexer::with_config(
            fulltext(),
            LazyConfig {
                workers: 1,
                capacity: 4,
                policy: OverflowPolicy::Block,
            },
        );
        for i in 0..200u64 {
            indexer
                .enqueue(ObjectId(i), format!("steady item {i} bounded"))
                .unwrap();
            // The producer may stall waiting for room, but work is never
            // dropped and the in-flight backlog never exceeds the bound,
            // the per-worker shutdown-sentinel headroom, and the item the
            // worker already pulled off the queue.
            assert!(indexer.backlog() <= 4 + 1 + 1);
        }
        indexer.drain();
        let stats = indexer.stats();
        assert_eq!(stats.enqueued, 200);
        assert_eq!(stats.completed, 200);
        assert_eq!(stats.rejected, 0);
    }

    /// Executor that runs jobs inline until told to refuse them.
    struct ToggleExecutor {
        full: std::sync::atomic::AtomicBool,
    }

    impl BackgroundExecutor for ToggleExecutor {
        fn submit_background(
            &self,
            job: Box<dyn FnOnce() + Send>,
        ) -> std::result::Result<(), SubmitError> {
            if self.full.load(Ordering::Relaxed) {
                return Err(SubmitError::Full);
            }
            job();
            Ok(())
        }
    }

    #[test]
    fn executor_mode_runs_jobs_and_surfaces_backpressure() {
        let executor = Arc::new(ToggleExecutor {
            full: std::sync::atomic::AtomicBool::new(false),
        });
        let mut indexer = LazyIndexer::with_executor(
            fulltext(),
            Arc::clone(&executor) as Arc<dyn BackgroundExecutor>,
        );
        indexer.enqueue(ObjectId(1), "executor run").unwrap();
        indexer.drain();
        assert_eq!(indexer.index().lookup_term("executor").unwrap().len(), 1);

        executor.full.store(true, Ordering::Relaxed);
        assert!(matches!(
            indexer.enqueue(ObjectId(2), "refused"),
            Err(IndexError::QueueFull)
        ));
        let stats = indexer.stats();
        assert_eq!(stats.enqueued, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 1);

        indexer.shutdown();
        executor.full.store(false, Ordering::Relaxed);
        assert!(matches!(
            indexer.enqueue(ObjectId(3), "after stop"),
            Err(IndexError::IndexerStopped)
        ));
    }

    #[test]
    fn drop_performs_clean_shutdown() {
        let index = fulltext();
        {
            let indexer = LazyIndexer::new(Arc::clone(&index), 2);
            indexer.enqueue(ObjectId(9), "cleanup on drop").unwrap();
            // Dropped here; the destructor must flush or at least join
            // without panicking.
        }
        // After drop, the document may or may not be indexed depending on
        // scheduling, but the process must not hang or crash. Give the
        // absent case a definitive check by re-indexing synchronously.
        index
            .index_document(ObjectId(10), "cleanup finished")
            .unwrap();
        assert!(!index.lookup_term("cleanup").unwrap().is_empty());
    }
}

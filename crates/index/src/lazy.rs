//! Lazy, background full-text indexing.
//!
//! The paper: "we use background threads to perform lazy full-text
//! indexing" (§3.4). [`LazyIndexer`] owns a pool of worker threads fed by
//! an unbounded channel; callers enqueue `(object, text)` work and continue
//! immediately. Experiment E4 compares the ingest throughput of this lazy
//! path against synchronous (eager) indexing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

use hfad_osd::ObjectId;

use crate::error::{IndexError, Result};
use crate::fulltext::FullTextIndex;

enum WorkItem {
    Index { oid: ObjectId, text: String },
    Remove { oid: ObjectId },
    Shutdown,
}

/// Counters describing the indexer's progress.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LazyStats {
    /// Work items accepted.
    pub enqueued: u64,
    /// Work items fully processed.
    pub completed: u64,
    /// Work items that failed (the error is recorded and the worker moves
    /// on; failures never take the pipeline down).
    pub failed: u64,
}

/// A pool of background indexing threads over a shared [`FullTextIndex`].
pub struct LazyIndexer {
    index: Arc<FullTextIndex>,
    sender: Option<Sender<WorkItem>>,
    workers: Vec<JoinHandle<()>>,
    enqueued: AtomicU64,
    completed: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
}

impl LazyIndexer {
    /// Spawns `workers` background threads indexing into `index`.
    pub fn new(index: Arc<FullTextIndex>, workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = unbounded::<WorkItem>();
        let completed = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let receiver = receiver.clone();
            let index = Arc::clone(&index);
            let completed = Arc::clone(&completed);
            let failed = Arc::clone(&failed);
            handles.push(std::thread::spawn(move || {
                while let Ok(item) = receiver.recv() {
                    match item {
                        WorkItem::Index { oid, text } => {
                            match index.index_document(oid, &text) {
                                Ok(_) => completed.fetch_add(1, Ordering::Relaxed),
                                Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        WorkItem::Remove { oid } => {
                            match index.remove_document(oid) {
                                Ok(_) => completed.fetch_add(1, Ordering::Relaxed),
                                Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        WorkItem::Shutdown => break,
                    }
                }
            }));
        }
        LazyIndexer {
            index,
            sender: Some(sender),
            workers: handles,
            enqueued: AtomicU64::new(0),
            completed,
            failed,
        }
    }

    /// The full-text index the workers feed.
    pub fn index(&self) -> &Arc<FullTextIndex> {
        &self.index
    }

    fn sender(&self) -> Result<&Sender<WorkItem>> {
        self.sender.as_ref().ok_or(IndexError::IndexerStopped)
    }

    /// Enqueues a document for indexing and returns immediately.
    pub fn enqueue(&self, oid: ObjectId, text: impl Into<String>) -> Result<()> {
        self.sender()?
            .send(WorkItem::Index {
                oid,
                text: text.into(),
            })
            .map_err(|_| IndexError::IndexerStopped)?;
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Enqueues removal of every posting for `oid`.
    pub fn enqueue_remove(&self, oid: ObjectId) -> Result<()> {
        self.sender()?
            .send(WorkItem::Remove { oid })
            .map_err(|_| IndexError::IndexerStopped)?;
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of items accepted but not yet processed.
    pub fn backlog(&self) -> u64 {
        let s = self.stats();
        s.enqueued - s.completed - s.failed
    }

    /// Blocks until every item enqueued so far has been processed.
    pub fn drain(&self) {
        while self.backlog() > 0 {
            std::thread::yield_now();
        }
    }

    /// Progress counters.
    pub fn stats(&self) -> LazyStats {
        LazyStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }

    /// Stops the worker threads after the current backlog is processed.
    pub fn shutdown(&mut self) {
        if let Some(sender) = self.sender.take() {
            for _ in 0..self.workers.len() {
                let _ = sender.send(WorkItem::Shutdown);
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LazyIndexer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hfad_btree::TreeContext;
    use hfad_storage::{BuddyAllocator, MemDevice};

    use super::*;

    fn fulltext() -> Arc<FullTextIndex> {
        let device = Arc::new(MemDevice::new(65536, 512));
        let allocator = Arc::new(BuddyAllocator::new(1, 65535));
        Arc::new(FullTextIndex::new(TreeContext::new(device, allocator), 4).unwrap())
    }

    #[test]
    fn background_indexing_eventually_visible() {
        let indexer = LazyIndexer::new(fulltext(), 2);
        for i in 0..50u64 {
            indexer
                .enqueue(ObjectId(i), format!("document {i} about lazy indexing"))
                .unwrap();
        }
        indexer.drain();
        let stats = indexer.stats();
        assert_eq!(stats.enqueued, 50);
        assert_eq!(stats.completed, 50);
        assert_eq!(stats.failed, 0);
        assert_eq!(indexer.index().lookup_term("lazy").unwrap().len(), 50);
        assert_eq!(indexer.index().documents_indexed(), 50);
    }

    #[test]
    fn enqueue_remove_deletes_postings() {
        let indexer = LazyIndexer::new(fulltext(), 1);
        indexer.enqueue(ObjectId(1), "transient content").unwrap();
        indexer.drain();
        assert_eq!(indexer.index().lookup_term("transient").unwrap().len(), 1);
        indexer.enqueue_remove(ObjectId(1)).unwrap();
        indexer.drain();
        assert!(indexer.index().lookup_term("transient").unwrap().is_empty());
    }

    #[test]
    fn shutdown_then_enqueue_fails() {
        let mut indexer = LazyIndexer::new(fulltext(), 1);
        indexer.enqueue(ObjectId(1), "before shutdown").unwrap();
        indexer.shutdown();
        assert!(matches!(
            indexer.enqueue(ObjectId(2), "after shutdown"),
            Err(IndexError::IndexerStopped)
        ));
        // Work submitted before shutdown was still completed.
        assert_eq!(indexer.index().lookup_term("before").unwrap().len(), 1);
    }

    #[test]
    fn many_producers_one_pool() {
        let indexer = Arc::new(LazyIndexer::new(fulltext(), 4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let indexer = Arc::clone(&indexer);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    indexer
                        .enqueue(ObjectId(t * 100 + i), format!("thread {t} item {i} shared"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        indexer.drain();
        assert_eq!(indexer.index().lookup_term("shared").unwrap().len(), 100);
    }

    #[test]
    fn drop_performs_clean_shutdown() {
        let index = fulltext();
        {
            let indexer = LazyIndexer::new(Arc::clone(&index), 2);
            indexer.enqueue(ObjectId(9), "cleanup on drop").unwrap();
            // Dropped here; the destructor must flush or at least join
            // without panicking.
        }
        // After drop, the document may or may not be indexed depending on
        // scheduling, but the process must not hang or crash. Give the
        // absent case a definitive check by re-indexing synchronously.
        index
            .index_document(ObjectId(10), "cleanup finished")
            .unwrap();
        assert!(!index.lookup_term("cleanup").unwrap().is_empty());
    }
}

//! The extensible index-store abstraction and registry.
//!
//! "We specify an extensible index store to facilitate efficient search on
//! rich data types. Given one or more type/value specifications, the
//! collection of index stores must return a list of object IDs matching the
//! search terms" (§3.2). [`IndexStore`] is that specification;
//! [`IndexRegistry`] is the collection, routing each tag to the store that
//! handles it and supporting run-time registration of plug-in indices
//! (open question 1 in §4).

use std::sync::Arc;

use parking_lot::RwLock;

use hfad_osd::ObjectId;

use crate::error::{IndexError, Result};
use crate::tag::{Tag, TagValue};

/// Statistics reported by an index store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Postings currently stored.
    pub postings: u64,
    /// Insert operations performed.
    pub inserts: u64,
    /// Remove operations performed.
    pub removes: u64,
    /// Lookup operations performed.
    pub lookups: u64,
}

/// One index in the extensible collection.
///
/// Implementations must be safe for concurrent use; the registry never
/// serialises calls.
pub trait IndexStore: Send + Sync {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Returns `true` if this store indexes values carrying `tag`.
    fn handles(&self, tag: &Tag) -> bool;

    /// Adds a posting mapping `tag/value` to `oid`.
    fn insert(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()>;

    /// Removes the posting mapping `tag/value` to `oid` (no-op if absent).
    fn remove(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()>;

    /// Returns every object id posted under `tag/value`, in ascending order.
    fn lookup(&self, tag: &Tag, value: &str) -> Result<Vec<ObjectId>>;

    /// Removes every posting that references `oid` (object deletion).
    fn remove_object(&self, oid: ObjectId) -> Result<()>;

    /// Lists the `tag/value` pairs currently naming `oid`.
    fn tags_of(&self, oid: ObjectId) -> Result<Vec<TagValue>>;

    /// Store statistics.
    fn stats(&self) -> IndexStats;
}

/// Routes tags to index stores.
pub struct IndexRegistry {
    stores: RwLock<Vec<Arc<dyn IndexStore>>>,
}

impl IndexRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        IndexRegistry {
            stores: RwLock::new(Vec::new()),
        }
    }

    /// Registers a store. Stores are consulted in registration order, so
    /// more specific stores should be registered before catch-alls.
    pub fn register(&self, store: Arc<dyn IndexStore>) {
        self.stores.write().push(store);
    }

    /// Number of registered stores.
    pub fn len(&self) -> usize {
        self.stores.read().len()
    }

    /// Returns `true` if no stores are registered.
    pub fn is_empty(&self) -> bool {
        self.stores.read().is_empty()
    }

    /// Finds the store responsible for `tag`.
    pub fn route(&self, tag: &Tag) -> Result<Arc<dyn IndexStore>> {
        self.stores
            .read()
            .iter()
            .find(|s| s.handles(tag))
            .cloned()
            .ok_or_else(|| IndexError::NoIndexForTag(tag.name().to_string()))
    }

    /// Adds a posting via the responsible store.
    pub fn insert(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()> {
        self.route(tag)?.insert(tag, value, oid)
    }

    /// Removes a posting via the responsible store.
    pub fn remove(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()> {
        self.route(tag)?.remove(tag, value, oid)
    }

    /// Looks up a tag/value pair via the responsible store.
    pub fn lookup(&self, tag: &Tag, value: &str) -> Result<Vec<ObjectId>> {
        self.route(tag)?.lookup(tag, value)
    }

    /// Removes every posting for `oid` in every store.
    pub fn remove_object(&self, oid: ObjectId) -> Result<()> {
        for store in self.stores.read().iter() {
            store.remove_object(oid)?;
        }
        Ok(())
    }

    /// Collects the tag/value pairs naming `oid` across all stores.
    pub fn tags_of(&self, oid: ObjectId) -> Result<Vec<TagValue>> {
        let mut out = Vec::new();
        for store in self.stores.read().iter() {
            out.extend(store.tags_of(oid)?);
        }
        Ok(out)
    }

    /// Snapshot of `(store name, stats)` for every registered store.
    pub fn stats(&self) -> Vec<(String, IndexStats)> {
        self.stores
            .read()
            .iter()
            .map(|s| (s.name().to_string(), s.stats()))
            .collect()
    }
}

impl Default for IndexRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// A trivial in-memory store used to exercise the registry itself.
    struct MemIndex {
        name: String,
        tags: Vec<Tag>,
        postings: Mutex<BTreeMap<(String, String), Vec<u64>>>,
    }

    impl MemIndex {
        fn new(name: &str, tags: Vec<Tag>) -> Arc<Self> {
            Arc::new(MemIndex {
                name: name.to_string(),
                tags,
                postings: Mutex::new(BTreeMap::new()),
            })
        }
    }

    impl IndexStore for MemIndex {
        fn name(&self) -> &str {
            &self.name
        }
        fn handles(&self, tag: &Tag) -> bool {
            self.tags.contains(tag)
        }
        fn insert(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()> {
            self.postings
                .lock()
                .unwrap()
                .entry((tag.name().into(), value.into()))
                .or_default()
                .push(oid.as_u64());
            Ok(())
        }
        fn remove(&self, tag: &Tag, value: &str, oid: ObjectId) -> Result<()> {
            if let Some(v) = self
                .postings
                .lock()
                .unwrap()
                .get_mut(&(tag.name().into(), value.into()))
            {
                v.retain(|&o| o != oid.as_u64());
            }
            Ok(())
        }
        fn lookup(&self, tag: &Tag, value: &str) -> Result<Vec<ObjectId>> {
            Ok(self
                .postings
                .lock()
                .unwrap()
                .get(&(tag.name().into(), value.into()))
                .map(|v| v.iter().map(|&o| ObjectId(o)).collect())
                .unwrap_or_default())
        }
        fn remove_object(&self, oid: ObjectId) -> Result<()> {
            for v in self.postings.lock().unwrap().values_mut() {
                v.retain(|&o| o != oid.as_u64());
            }
            Ok(())
        }
        fn tags_of(&self, oid: ObjectId) -> Result<Vec<TagValue>> {
            let mut out = Vec::new();
            for ((tag, value), oids) in self.postings.lock().unwrap().iter() {
                if oids.contains(&oid.as_u64()) {
                    out.push(TagValue::new(Tag::parse(tag), value.clone()));
                }
            }
            Ok(out)
        }
        fn stats(&self) -> IndexStats {
            IndexStats::default()
        }
    }

    #[test]
    fn routing_prefers_registration_order() {
        let registry = IndexRegistry::new();
        registry.register(MemIndex::new("posix-only", vec![Tag::Posix]));
        registry.register(MemIndex::new(
            "catch-all",
            vec![Tag::Posix, Tag::User, Tag::Udef],
        ));
        assert_eq!(registry.route(&Tag::Posix).unwrap().name(), "posix-only");
        assert_eq!(registry.route(&Tag::User).unwrap().name(), "catch-all");
        assert!(registry.route(&Tag::FullText).is_err());
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn insert_lookup_remove_through_registry() {
        let registry = IndexRegistry::new();
        registry.register(MemIndex::new("kv", vec![Tag::User, Tag::Udef]));
        registry.insert(&Tag::User, "margo", ObjectId(1)).unwrap();
        registry.insert(&Tag::User, "margo", ObjectId(2)).unwrap();
        registry.insert(&Tag::Udef, "hotos", ObjectId(2)).unwrap();
        assert_eq!(
            registry.lookup(&Tag::User, "margo").unwrap(),
            vec![ObjectId(1), ObjectId(2)]
        );
        registry.remove(&Tag::User, "margo", ObjectId(1)).unwrap();
        assert_eq!(
            registry.lookup(&Tag::User, "margo").unwrap(),
            vec![ObjectId(2)]
        );
        let tags = registry.tags_of(ObjectId(2)).unwrap();
        assert_eq!(tags.len(), 2);
        registry.remove_object(ObjectId(2)).unwrap();
        assert!(registry.lookup(&Tag::User, "margo").unwrap().is_empty());
    }

    #[test]
    fn unroutable_tag_is_an_error() {
        let registry = IndexRegistry::new();
        assert!(matches!(
            registry.lookup(&Tag::Posix, "/x"),
            Err(IndexError::NoIndexForTag(_))
        ));
        assert!(registry.is_empty());
    }
}

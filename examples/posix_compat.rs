//! POSIX backwards compatibility: run a classic hierarchical workflow
//! (mkdir/create/write/readdir/rename/unlink) against the POSIX veneer,
//! then show that the very same objects are simultaneously reachable
//! through tags and full-text search — the hierarchy is one view, not the
//! canonical one (§2.2, §3.1.1).
//!
//! ```sh
//! cargo run --example posix_compat
//! ```

use std::sync::Arc;

use hfad::core::{Hfad, HfadConfig};
use hfad::posix::PosixFs;
use hfad::TagValue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hfad = Arc::new(Hfad::in_memory(64 * 1024 * 1024, HfadConfig::eager())?);
    let fs = PosixFs::new(Arc::clone(&hfad))?;

    // A perfectly ordinary POSIX session.
    fs.mkdir_all("/home/margo/projects/hfad")?;
    fs.create("/home/margo/projects/hfad/notes.txt")?;
    fs.write(
        "/home/margo/projects/hfad/notes.txt",
        0,
        b"hierarchical namespaces conflate naming with access",
    )?;
    fs.create("/home/margo/projects/hfad/todo.txt")?;
    fs.append("/home/margo/projects/hfad/todo.txt", b"- write the paper\n")?;
    fs.append(
        "/home/margo/projects/hfad/todo.txt",
        b"- bury the hierarchy\n",
    )?;

    println!("ls /home/margo/projects/hfad:");
    for entry in fs.readdir("/home/margo/projects/hfad")? {
        let stat = fs.stat(&format!("/home/margo/projects/hfad/{}", entry.name))?;
        println!(
            "  {}{:<12} {:>5} bytes",
            if entry.is_dir { "d " } else { "- " },
            entry.name,
            stat.size
        );
    }

    // mv and rm behave as expected.
    fs.rename(
        "/home/margo/projects/hfad/todo.txt",
        "/home/margo/projects/hfad/TODO",
    )?;
    assert!(fs.exists("/home/margo/projects/hfad/TODO"));
    fs.unlink("/home/margo/projects/hfad/TODO")?;
    assert!(!fs.exists("/home/margo/projects/hfad/TODO"));

    // Renaming a whole directory re-tags the subtree.
    fs.rename("/home/margo/projects", "/home/margo/work")?;
    println!(
        "after mv projects work: notes at /home/margo/work/hfad/notes.txt -> {}",
        fs.exists("/home/margo/work/hfad/notes.txt")
    );

    // The same object, through the native API: tag it and find it by
    // content — no path needed.
    let notes = fs.stat("/home/margo/work/hfad/notes.txt")?.oid;
    hfad.add_tags(notes, &[TagValue::udef("position-paper")])?;
    hfad.index_content(notes, &hfad.read_all(notes)?)?;
    println!(
        "lookup UDEF/position-paper -> {:?}",
        hfad.lookup(&[TagValue::udef("position-paper")])?
    );
    println!(
        "search 'conflate naming'   -> {:?}",
        hfad.search_text(&["conflate", "naming"])?
    );

    // Where is the file "physically"? Nobody needs to know (§2.1) — but
    // every name it carries is one call away.
    for tag in hfad.tags_of(notes)? {
        println!("  name: {tag}");
    }
    Ok(())
}

//! Photo library: the paper's motivating workload (§1) — "users may have
//! many gigabytes worth of photo, video, and audio libraries", and "one
//! might want to access a picture … based on who is in it, when it was
//! taken, where it was taken".
//!
//! The example builds a synthetic photo library, registers a plug-in image
//! index (open question 1 of §4), and answers exactly those questions.
//!
//! ```sh
//! cargo run --example photo_library
//! ```

use std::sync::Arc;

use hfad::core::{AttributeIndex, Hfad, HfadConfig};
use hfad::workload::photo_library;
use hfad::{Tag, TagValue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = Hfad::in_memory(256 * 1024 * 1024, HfadConfig::eager())?;

    // A plug-in index for image dimensions — an "arbitrary index type" the
    // built-in key/value and full-text stores do not cover.
    let image_index = Arc::new(AttributeIndex::new("IMAGE"));
    fs.register_index(image_index);
    let image_tag = Tag::Custom("IMAGE".to_string());

    // Import a synthetic library of 2 000 photos with people/place/year tags.
    let photos = photo_library(2_000, 42);
    let mut imported = 0usize;
    for (i, photo) in photos.iter().enumerate() {
        let mut tags: Vec<TagValue> = vec![TagValue::posix(photo.path.clone())];
        for (tag, value) in &photo.tags {
            tags.push(TagValue::new(Tag::parse(tag), value.clone()));
        }
        // Alternate between two synthetic resolutions for the plug-in index.
        let resolution = if i % 3 == 0 { "1920x1080" } else { "640x480" };
        tags.push(TagValue::new(image_tag.clone(), resolution));
        fs.create_with_content(&tags, photo.text.as_bytes())?;
        imported += 1;
    }
    println!("imported {imported} photos");

    // Who is in it? Where was it taken? When?
    let margo_beach = fs.lookup(&[TagValue::user("margo"), TagValue::udef("beach")])?;
    println!("photos of margo at the beach: {}", margo_beach.len());

    let margo_beach_2008 = fs.lookup(&[
        TagValue::user("margo"),
        TagValue::udef("beach"),
        TagValue::udef("2008"),
    ])?;
    println!("…taken in 2008:               {}", margo_beach_2008.len());

    // Combine a plug-in index with built-in tags: high-resolution museum shots.
    let hires_museum = fs.lookup(&[
        TagValue::new(image_tag.clone(), "1920x1080"),
        TagValue::udef("museum"),
    ])?;
    println!("high-res museum photos:       {}", hires_museum.len());

    // Iterative refinement, the "current directory" of a search-based world.
    let cursor = fs.search().refine(TagValue::udef("mountain"));
    println!("mountain photos:              {}", cursor.count()?);
    let cursor = cursor.refine(TagValue::user("nick"));
    println!("…with nick:                   {}", cursor.count()?);

    // The hierarchy never went away for legacy tools: every photo still has
    // its POSIX name.
    let by_path = fs.lookup(&[TagValue::posix(photos[0].path.clone())])?;
    println!("lookup by POSIX path:         {:?}", by_path);

    // A photo can join a new "album" (collection) without being copied or
    // moved: membership is a tag.
    if let Some(&first) = margo_beach.first() {
        fs.add_tags(first, &[TagValue::udef("album-best-of-2009")])?;
        let album = fs.lookup(&[TagValue::udef("album-best-of-2009")])?;
        println!("album best-of-2009 size:      {}", album.len());
    }

    let stats = fs.stats();
    println!(
        "objects: {}, index postings: {}",
        stats.store.objects,
        stats.indices.iter().map(|(_, s)| s.postings).sum::<u64>()
    );
    Ok(())
}

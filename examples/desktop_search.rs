//! Desktop search: a mail store and document corpus indexed lazily in the
//! background (§3.4), queried with keyword conjunctions (§3.1.1), and
//! compared side by side against the same corpus stored in the
//! hierarchical baseline with a desktop-search index bolted on top (§2.3).
//!
//! ```sh
//! cargo run --example desktop_search
//! ```

use std::time::Instant;

use hfad::core::{Hfad, HfadConfig};
use hfad::hierfs::{HierConfig, HierFs, SearchIndex};
use hfad::workload::{documents, mail_store, CorpusConfig};
use hfad::{Tag, TagValue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // hFAD: content is indexed by background threads as it is written.
    // ------------------------------------------------------------------
    let fs = Hfad::in_memory(256 * 1024 * 1024, HfadConfig::default())?;

    let mail = mail_store(3_000, 7);
    let docs = documents(&CorpusConfig {
        items: 1_000,
        ..Default::default()
    });

    let ingest_start = Instant::now();
    for item in mail.iter().chain(docs.iter()) {
        let mut tags: Vec<TagValue> = vec![TagValue::posix(item.path.clone())];
        for (tag, value) in &item.tags {
            tags.push(TagValue::new(Tag::parse(tag), value.clone()));
        }
        fs.create_with_content(&tags, item.content().as_slice())?;
    }
    let enqueue_elapsed = ingest_start.elapsed();
    println!(
        "hFAD: enqueued {} items for lazy indexing in {:.2?} (backlog {})",
        mail.len() + docs.len(),
        enqueue_elapsed,
        fs.stats().lazy_backlog
    );
    fs.sync_index();
    println!(
        "hFAD: background indexing drained after {:.2?} total",
        ingest_start.elapsed()
    );

    // Keyword search: conjunction of FULLTEXT terms, optionally narrowed by
    // other tags ("Google is a verb", §1).
    for query in [
        vec!["storage", "system"],
        vec!["meeting", "schedule"],
        vec!["inbox"],
    ] {
        let start = Instant::now();
        let hits = fs.search_text(&query)?;
        println!(
            "hFAD query {:?}: {} hits in {:.1?}",
            query,
            hits.len(),
            start.elapsed()
        );
    }
    let margo_inbox = fs
        .search()
        .refine_text("storage")
        .refine(TagValue::user("margo"))
        .results()?;
    println!("hFAD 'storage' ∧ USER/margo: {} hits", margo_inbox.len());

    // ------------------------------------------------------------------
    // Baseline: the same corpus in a hierarchy, with the search index
    // layered on top of the file system (search term → pathname → walk).
    // ------------------------------------------------------------------
    let hier = HierFs::in_memory(256 * 1024 * 1024, HierConfig::default())?;
    for dir in hfad::workload::directories(&mail) {
        hier.mkdir_all(&dir)?;
    }
    for dir in hfad::workload::directories(&docs) {
        hier.mkdir_all(&dir)?;
    }
    let index = SearchIndex::new(&hier)?;
    for item in mail.iter().chain(docs.iter()) {
        hier.create_file(&item.path)?;
        hier.write(&item.path, 0, &item.content())?;
        index.index_file(&hier, &item.path)?;
    }

    let before = hier.counters();
    let start = Instant::now();
    let contents = index.search_and_read(&hier, &["storage", "system"], 4096)?;
    let delta = hier.counters().delta_since(&before);
    println!(
        "baseline query ['storage','system']: {} hits in {:.1?} \
         ({} namespace components walked, {} extra index traversals)",
        contents.len(),
        start.elapsed(),
        delta.components_resolved,
        delta.total_traversals(),
    );

    println!(
        "baseline postings: {}, hFAD fulltext documents: {}",
        index.posting_count()?,
        fs.stats().fulltext_documents
    );
    Ok(())
}

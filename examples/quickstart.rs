//! Quickstart: create a tagged, search-based file system, store a few
//! objects, and find them by describing *what* they are instead of *where*
//! they live.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hfad::core::{Hfad, HfadConfig};
use hfad::TagValue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 64 MiB in-memory file system; eager indexing so results are visible
    // immediately (the default is lazy background indexing).
    let fs = Hfad::in_memory(64 * 1024 * 1024, HfadConfig::eager())?;

    // Store a document. The POSIX path is just one of its names.
    let report = fs.create_with_content(
        &[
            TagValue::posix("/docs/2009/quarterly-report.txt"),
            TagValue::udef("finance"),
            TagValue::udef("q2"),
            TagValue::user("margo"),
            TagValue::app("word-processor"),
        ],
        b"Quarterly report: storage revenue grew while tape declined.",
    )?;

    // Store a photo with completely different names.
    let photo = fs.create_with_content(
        &[
            TagValue::posix("/photos/2009/beach/img-0001.jpg"),
            TagValue::udef("beach"),
            TagValue::udef("vacation"),
            TagValue::user("margo"),
            TagValue::user("nick"),
        ],
        b"synthetic jpeg bytes: sand sun surf",
    )?;

    // 1. Find by tag conjunction: everything of Margo's about finance.
    let hits = fs.lookup(&[TagValue::user("margo"), TagValue::udef("finance")])?;
    println!("margo ∧ finance        -> {hits:?}");
    assert_eq!(hits, vec![report]);

    // 2. Full-text search, Google-style.
    let hits = fs.search_text(&["storage", "revenue"])?;
    println!("fulltext storage+revenue -> {hits:?}");
    assert_eq!(hits, vec![report]);

    // 3. The POSIX path still works — it is just another tag.
    let hits = fs.lookup(&[TagValue::posix("/photos/2009/beach/img-0001.jpg")])?;
    println!("POSIX path             -> {hits:?}");
    assert_eq!(hits, vec![photo]);

    // 4. Iterative refinement: narrow like `cd`, but along any dimension.
    let cursor = fs
        .search()
        .refine(TagValue::user("margo"))
        .refine(TagValue::udef("vacation"));
    println!("refine margo -> vacation -> {} object(s)", cursor.count()?);

    // 5. Byte-level access: read, splice into the middle, remove a range.
    fs.insert(report, 18, b"(draft) ")?;
    let head = fs.read(report, 0, 30)?;
    println!("after insert: {}", String::from_utf8_lossy(&head));
    fs.truncate_range(report, 18, 8)?;
    let head = fs.read(report, 0, 30)?;
    println!("after range-truncate: {}", String::from_utf8_lossy(&head));

    println!(
        "objects: {}, fulltext documents: {}",
        fs.object_count(),
        fs.stats().fulltext_documents
    );
    Ok(())
}

//! # hfad
//!
//! Umbrella crate for the hFAD reproduction ("Hierarchical File Systems Are
//! Dead", Seltzer & Murphy, HotOS 2009). It re-exports every workspace
//! crate under one name so examples, integration tests and downstream users
//! can depend on a single package:
//!
//! * [`core`] — the hFAD file system (tagged, search-based namespace).
//! * [`posix`] — the POSIX compatibility veneer.
//! * [`osd`] — the object-based storage device layer.
//! * [`index`] — the extensible index stores.
//! * [`btree`] — the B+tree substrate.
//! * [`storage`] — devices, allocators, extents, journal.
//! * [`engine`] — the async I/O engine (submission/completion queues,
//!   priority scheduler, read-ahead/write-behind/lazy-index services).
//! * [`hierfs`] — the hierarchical baseline used in experiments.
//! * [`workload`] — synthetic corpora and distributions.

pub use hfad_btree as btree;
pub use hfad_core as core;
pub use hfad_engine as engine;
pub use hfad_hierfs as hierfs;
pub use hfad_index as index;
pub use hfad_osd as osd;
pub use hfad_posix as posix;
pub use hfad_storage as storage;
pub use hfad_workload as workload;

pub use hfad_core::{Hfad, HfadConfig, HfadError, ObjectId, Query, Tag, TagValue};
pub use hfad_osd::{AllocatorKind, ObjectStore, StoreConfig, StoreStats};
